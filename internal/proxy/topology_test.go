package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/nn"
	"mixnn/internal/route"
	"mixnn/internal/transport"
	"mixnn/internal/wire"
)

// topoFixture stands up an aggregation server + sharded front tier and
// returns everything a routing-plane test needs.
type topoFixture struct {
	agg      *AggServer
	obs      *roundObserver
	aggSrv   *httptest.Server
	px       *ShardedProxy
	pxSrv    *httptest.Server
	platform *enclave.Platform
	encl     *enclave.Enclave
}

func newTopoFixture(t *testing.T, cfg ShardedConfig) *topoFixture {
	t.Helper()
	platform, encl := fixtures(t)
	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), cfg.RoundSize)
	if err != nil {
		t.Fatal(err)
	}
	obs := &roundObserver{}
	agg.SetObserver(obs)
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)
	if cfg.Upstream == "" {
		cfg.Upstream = aggSrv.URL
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = 5 * time.Millisecond
	}
	px, err := NewSharded(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)
	return &topoFixture{agg: agg, obs: obs, aggSrv: aggSrv, px: px, pxSrv: pxSrv, platform: platform, encl: encl}
}

// sendRound drives one full round of identified participants through the
// front tier and returns the updates sent.
func (f *topoFixture) sendRound(t *testing.T, c int, offset float64) []nn.ParamSet {
	t.Helper()
	updates := perturbed(testArch().New(1).SnapshotParams(), c, offset)
	for i, u := range updates {
		resp := sendRaw(t, f.encl, f.pxSrv.URL, fmt.Sprintf("client-%d", i), u)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: %s", i, resp.Status)
		}
	}
	return updates
}

// assertRoundMean checks that the observer's round r saw exactly the
// classic mean of sent.
func assertRoundMean(t *testing.T, obs *roundObserver, r int, sent []nn.ParamSet) {
	t.Helper()
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.recs) <= r {
		t.Fatalf("observer saw %d rounds, want > %d", len(obs.recs), r)
	}
	rec := obs.recs[r]
	if len(rec.Updates) != len(sent) {
		t.Fatalf("round %d delivered %d updates, want %d", r, len(rec.Updates), len(sent))
	}
	want, err := nn.Average(sent)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nn.Average(rec.Updates)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(want, 1e-9) {
		t.Fatalf("round %d delivered mean != classic mean", r)
	}
}

// TestTopologyAdminEndpoint drives the admin surface over HTTP: an idle
// tier applies a directive immediately, the version bumps, quotas follow
// the weights, and the status endpoints surface the routing plane.
func TestTopologyAdminEndpoint(t *testing.T) {
	f := newTopoFixture(t, ShardedConfig{RoundSize: 8, Shards: 2, Seed: 31, HopSecret: "adm1n"})
	adminPost := func(body []byte) *http.Response {
		req, err := http.NewRequest(http.MethodPost, f.pxSrv.URL+"/v1/admin/topology", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer adm1n")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	adminGet := func() *http.Response {
		req, err := http.NewRequest(http.MethodGet, f.pxSrv.URL+"/v1/admin/topology", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer adm1n")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	var st wire.TopologyStatus
	resp := adminGet()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Version != 0 || st.Mode != "sticky" || len(st.Shards) != 2 {
		t.Fatalf("initial topology = %+v", st)
	}

	directive, _ := json.Marshal(wire.TopologyDirective{
		Mode: "hash-quota",
		Shards: []wire.TopologyShardSpec{
			{Weight: 1}, {Weight: 1}, {Weight: 2},
		},
	})
	resp = adminPost(directive)
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("directive: %s", resp.Status)
	}
	// The tier was idle, so the plan applied immediately.
	if st.Version != 1 || st.Mode != "hash-quota" || len(st.Shards) != 3 || st.Staged != nil {
		t.Fatalf("post-directive topology = %+v", st)
	}
	if st.Shards[2].Quota != 4 || st.Shards[0].Quota != 2 {
		t.Fatalf("quotas = %+v, want weight-proportional [2 2 4]", st.Shards)
	}
	pst := f.px.Status()
	if pst.TopoVersion != 1 || pst.RoutingMode != "hash-quota" || len(pst.Shards) != 3 {
		t.Fatalf("proxy status routing plane = v%d %s %d shards", pst.TopoVersion, pst.RoutingMode, len(pst.Shards))
	}

	// A bad directive fails loudly and changes nothing.
	resp = adminPost([]byte(`{"shards":[{},{},{},{},{},{},{},{},{}]}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("oversized shard set: %s, want 422", resp.Status)
	}
	if got := f.px.Topology().Version(); got != 1 {
		t.Fatalf("failed directive bumped the topology to v%d", got)
	}
}

// TestTopologyAdminGatedBySecret: with an inter-proxy secret configured,
// the admin surface requires it.
func TestTopologyAdminGatedBySecret(t *testing.T) {
	f := newTopoFixture(t, ShardedConfig{RoundSize: 4, Shards: 1, Seed: 32, HopSecret: "s3cret"})
	resp, err := http.Get(f.pxSrv.URL + "/v1/admin/topology")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated admin GET: %s, want 401", resp.Status)
	}
	req, _ := http.NewRequest(http.MethodGet, f.pxSrv.URL+"/v1/admin/topology", nil)
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated admin GET: %s", resp.Status)
	}
}

// TestTopologyAdminPostRequiresConfiguredSecret: with NO inter-proxy
// secret configured, the state-changing POST surface must not exist —
// an unauthenticated reshape could shrink the anonymity set or attach
// an attacker-attested "remote shard" receiving raw pre-mix updates.
func TestTopologyAdminPostRequiresConfiguredSecret(t *testing.T) {
	f := newTopoFixture(t, ShardedConfig{RoundSize: 4, Shards: 2, Seed: 35})
	resp, err := http.Post(f.pxSrv.URL+"/v1/admin/topology", "application/json",
		bytes.NewReader([]byte(`{"mode":"round-robin","shards":[{}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("secretless admin POST: %s, want 403", resp.Status)
	}
	if got := f.px.Topology(); got.Version() != 0 || got.P() != 2 {
		t.Fatal("secretless POST changed the topology")
	}
}

// TestTopologyAppliesAtRoundBoundary stages a directive while a round is
// OPEN: the open round finishes under the old plan, the next round runs
// under the new one, and both rounds aggregate exactly.
func TestTopologyAppliesAtRoundBoundary(t *testing.T) {
	f := newTopoFixture(t, ShardedConfig{RoundSize: 6, Shards: 2, Seed: 33})

	// Half a round in, then stage P=3 round-robin.
	updates := perturbed(testArch().New(1).SnapshotParams(), 12, 0)
	for i := 0; i < 3; i++ {
		resp := sendRaw(t, f.encl, f.pxSrv.URL, fmt.Sprintf("client-%d", i), updates[i])
		resp.Body.Close()
	}
	if _, err := f.px.StageTopology(context.Background(), wire.TopologyDirective{
		Mode:   "round-robin",
		Shards: []wire.TopologyShardSpec{{}, {}, {}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := f.px.Topology().Version(); got != 0 {
		t.Fatalf("open round adopted the staged topology early (v%d)", got)
	}
	if st := f.px.Status(); st.StagedTopoVersion != 1 {
		t.Fatalf("staged version = %d, want 1", st.StagedTopoVersion)
	}
	for i := 3; i < 6; i++ {
		resp := sendRaw(t, f.encl, f.pxSrv.URL, fmt.Sprintf("client-%d", i), updates[i])
		resp.Body.Close()
	}
	flushTier(t, f.px)
	waitServerRound(t, f.agg, 1)
	topo := f.px.Topology()
	if topo.Version() != 1 || topo.P() != 3 || topo.Mode() != route.ModeRoundRobin {
		t.Fatalf("post-close topology = v%d P=%d %s", topo.Version(), topo.P(), topo.Mode())
	}
	assertRoundMean(t, f.obs, 0, updates[:6])

	// The next round runs under the new plan.
	for i := 6; i < 12; i++ {
		resp := sendRaw(t, f.encl, f.pxSrv.URL, fmt.Sprintf("client-%d", i), updates[i])
		resp.Body.Close()
	}
	flushTier(t, f.px)
	waitServerRound(t, f.agg, 2)
	assertRoundMean(t, f.obs, 1, updates[6:])
	st := f.px.Status()
	if len(st.Shards) != 3 {
		t.Fatalf("status shards = %d, want 3", len(st.Shards))
	}
}

// TestTopologyStickyReshardTable pins the sticky-across-reshard contract
// (ROADMAP follow-up): a tier sealed at P restores at P′; sticky clients
// MAY land on a different shard afterwards (mixing breadth, not
// correctness), and the finished round's aggregate is unchanged.
func TestTopologyStickyReshardTable(t *testing.T) {
	cases := []struct{ p, pPrime int }{{2, 3}, {4, 2}, {1, 4}}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%dto%d", tc.p, tc.pPrime), func(t *testing.T) {
			const c = 8
			platform, encl := fixtures(t)
			agg, err := NewAggServer(testArch().New(1).SnapshotParams(), c)
			if err != nil {
				t.Fatal(err)
			}
			aggSrv := httptest.NewServer(agg.Handler())
			t.Cleanup(aggSrv.Close)
			mk := func(p int) *ShardedProxy {
				px, err := NewSharded(ShardedConfig{
					Upstream: aggSrv.URL, K: 2, RoundSize: c, Shards: p, Seed: 41,
					RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
				}, encl, platform)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(px.Close)
				return px
			}
			px1 := mk(tc.p)
			srv1 := httptest.NewServer(px1.Handler())
			updates := perturbed(testArch().New(1).SnapshotParams(), c, 50)
			route1 := make(map[string]string)
			for i := 0; i < c/2; i++ {
				id := fmt.Sprintf("sticky-%d", i)
				resp := sendRaw(t, encl, srv1.URL, id, updates[i])
				route1[id] = resp.Header.Get(wire.HeaderShard)
				resp.Body.Close()
			}
			blob, err := px1.SealState()
			if err != nil {
				t.Fatal(err)
			}
			srv1.Close()

			px2 := mk(tc.pPrime)
			if err := px2.RestoreState(blob); err != nil {
				t.Fatal(err)
			}
			if got := px2.Topology().P(); got != tc.pPrime {
				t.Fatalf("restored tier has P=%d, want the configured %d (no topology adoption requested)", got, tc.pPrime)
			}
			srv2 := httptest.NewServer(px2.Handler())
			t.Cleanup(srv2.Close)
			moved := 0
			for i := c / 2; i < c; i++ {
				// Re-send under ids used before the reshard to observe
				// placement, plus fresh material to finish the round.
				id := fmt.Sprintf("sticky-%d", i-c/2)
				resp := sendRaw(t, encl, srv2.URL, id, updates[i])
				if route1[id] != "" && resp.Header.Get(wire.HeaderShard) != route1[id] {
					moved++
				}
				resp.Body.Close()
			}
			// Pinned behaviour: clients MAY move shards (no assertion that
			// moved == 0); what must hold is aggregation equivalence.
			t.Logf("P %d→%d: %d of %d sticky clients changed shard", tc.p, tc.pPrime, moved, c/2)
			flushTier(t, px2)
			waitServerRound(t, agg, 1)
			want, err := nn.Average(updates)
			if err != nil {
				t.Fatal(err)
			}
			if !agg.Global().ApproxEqual(want, 1e-9) {
				t.Fatalf("P %d→%d: aggregate diverged across the reshard", tc.p, tc.pPrime)
			}
		})
	}
}

// TestTopologyCrashRestartAdoptsSealedPlan is the v3 crash-restart e2e:
// a hash-quota tier with weighted shards is sealed mid-round; the
// replacement proxy is configured with a completely different static
// shape but AdoptSealedTopology, and must come back under EXACTLY the
// sealed plan — mode, shard count, quotas, loads — then finish the round
// with the aggregate unchanged.
func TestTopologyCrashRestartAdoptsSealedPlan(t *testing.T) {
	const c = 8
	platform, encl := fixtures(t)
	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), c)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)

	px1, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, K: 2, RoundSize: c, Seed: 43,
		Routing:    route.ModeHashQuota,
		ShardSpecs: []route.ShardSpec{{Weight: 3}, {Weight: 1}},
		RetryBase:  time.Millisecond, RetryMax: 5 * time.Millisecond,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px1.Close)
	srv1 := httptest.NewServer(px1.Handler())
	updates := perturbed(testArch().New(1).SnapshotParams(), c, 70)
	for i := 0; i < 5; i++ {
		resp := sendRaw(t, encl, srv1.URL, fmt.Sprintf("q-%d", i), updates[i])
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: %s", i, resp.Status)
		}
	}
	sealedLoads := make([]int, 2)
	for s, sh := range px1.Status().Shards {
		sealedLoads[s] = sh.Load
	}
	blob, err := px1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	// The replacement's flags say 4 sticky shards — but it adopts the
	// sealed plan.
	px2, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, K: 2, RoundSize: c, Shards: 4, Seed: 44,
		AdoptSealedTopology: true,
		RetryBase:           time.Millisecond, RetryMax: 5 * time.Millisecond,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px2.Close)
	if err := px2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	topo := px2.Topology()
	if topo.Mode() != route.ModeHashQuota || topo.P() != 2 {
		t.Fatalf("restored topology = %s P=%d, want hash-quota P=2 (the sealed plan)", topo.Mode(), topo.P())
	}
	if topo.Quota(0) != 6 || topo.Quota(1) != 2 {
		t.Fatalf("restored quotas = [%d %d], want the sealed [6 2]", topo.Quota(0), topo.Quota(1))
	}
	st := px2.Status()
	for s, sh := range st.Shards {
		if sh.Load != sealedLoads[s] {
			t.Fatalf("restored shard %d load = %d, want the sealed %d", s, sh.Load, sealedLoads[s])
		}
	}
	if st.InRound != 5 {
		t.Fatalf("restored in-round = %d, want 5", st.InRound)
	}

	srv2 := httptest.NewServer(px2.Handler())
	t.Cleanup(srv2.Close)
	for i := 5; i < c; i++ {
		resp := sendRaw(t, encl, srv2.URL, fmt.Sprintf("q-%d", i), updates[i])
		resp.Body.Close()
	}
	flushTier(t, px2)
	waitServerRound(t, agg, 1)
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("aggregate diverged across the v3 crash-restart")
	}
}

// remoteShardFixture builds one peer shard proxy with its OWN enclave
// (the multi-process deployment unit) whose round size is the quota the
// front tier will route to it.
func remoteShardFixture(t *testing.T, platform *enclave.Platform, upstream string, roundSize int, seed int64) (*ShardedProxy, string, RemoteShard) {
	return remoteShardFixtureOver(t, platform, nil, upstream, roundSize, seed)
}

// remoteShardFixtureOver is remoteShardFixture over an explicit
// transport: registered in lb when non-nil, served over httptest
// otherwise.
func remoteShardFixtureOver(t *testing.T, platform *enclave.Platform, lb *transport.Loopback, upstream string, roundSize int, seed int64) (*ShardedProxy, string, RemoteShard) {
	t.Helper()
	encl, err := enclave.New(enclave.Config{CodeIdentity: fmt.Sprintf("shard-enclave-%d", seed), RSABits: 1024}, platform)
	if err != nil {
		t.Fatal(err)
	}
	var cfgTr transport.Transport
	if lb != nil {
		cfgTr = lb
	}
	px, err := NewSharded(ShardedConfig{
		Upstream: upstream, K: 1, RoundSize: roundSize, Shards: 1, Seed: seed,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
		Transport: cfgTr,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	var addr string
	var tr transport.Transport
	if lb != nil {
		addr = fmt.Sprintf("loop://rshard-%d", seed)
		lb.Register(addr, px)
		tr = lb
	} else {
		srv := httptest.NewServer(px.Handler())
		t.Cleanup(srv.Close)
		addr, tr = srv.URL, transport.NewHTTP(nil)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	key, err := AttestHopOver(ctx, tr, addr, platform.AttestationPublicKey(), encl.Measurement())
	if err != nil {
		t.Fatal(err)
	}
	return px, addr, RemoteShard{Key: key}
}

// TestTopologyRemoteShardEndToEnd: a front tier with one local and one
// remote shard (its own enclave) closes a round at the aggregation
// server with the classic mean — the first true multi-process tier.
func TestTopologyRemoteShardEndToEnd(t *testing.T) {
	const c = 6
	platform, encl := fixtures(t)
	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), c)
	if err != nil {
		t.Fatal(err)
	}
	obs := &roundObserver{}
	agg.SetObserver(obs)
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)

	// Local shard weight 1, remote shard weight 1 → quotas [3 3].
	_, addr, rs := remoteShardFixture(t, platform, aggSrv.URL, 3, 91)
	px, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, K: 1, RoundSize: c, Seed: 92,
		Routing:      route.ModeHashQuota,
		ShardSpecs:   []route.ShardSpec{{}, {Addr: addr}},
		RemoteShards: map[string]RemoteShard{addr: rs},
		RetryBase:    time.Millisecond, RetryMax: 5 * time.Millisecond,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	updates := perturbed(testArch().New(1).SnapshotParams(), c, 110)
	for i, u := range updates {
		resp := sendRaw(t, encl, pxSrv.URL, fmt.Sprintf("rm-%d", i), u)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: %s", i, resp.Status)
		}
	}
	waitServerRound(t, agg, 1)
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("aggregate diverged with a remote shard in the tier")
	}
	st := px.Status()
	if st.Shards[1].Addr != addr {
		t.Fatalf("status does not surface the remote placement: %+v", st.Shards)
	}
	if st.Shards[1].Received != 3 {
		t.Fatalf("remote shard relayed %d updates, want its quota 3", st.Shards[1].Received)
	}
}

// TestTopologyRemoteKeyMissingStallsNotLoses: an entry addressed to a
// remote shard whose key is gone (e.g. restart without re-registration)
// must stay queued — retried, not quarantined — until the key returns.
func TestTopologyRemoteKeyMissingStallsNotLoses(t *testing.T) {
	const c = 4
	platform, encl := fixtures(t)
	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), c)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)
	shardPx, addr, rs := remoteShardFixture(t, platform, aggSrv.URL, 2, 93)

	px, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, K: 1, RoundSize: c, Seed: 94,
		Routing:      route.ModeHashQuota,
		ShardSpecs:   []route.ShardSpec{{}, {Addr: addr}},
		RemoteShards: map[string]RemoteShard{addr: rs},
		RetryBase:    time.Millisecond, RetryMax: 5 * time.Millisecond,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	// Sabotage: drop the key before any traffic, so the relay entry has
	// no target material.
	px.mu.Lock()
	delete(px.remotes, addr)
	px.mu.Unlock()

	updates := perturbed(testArch().New(1).SnapshotParams(), c, 130)
	for i, u := range updates {
		resp := sendRaw(t, encl, pxSrv.URL, fmt.Sprintf("rk-%d", i), u)
		resp.Body.Close()
	}
	// The relay entry must neither deliver nor quarantine.
	time.Sleep(50 * time.Millisecond)
	if q := px.Status().OutboxQuarantined; q != 0 {
		t.Fatalf("missing key quarantined %d entries (material lost)", q)
	}
	if pending := px.Status().OutboxPending; pending == 0 {
		t.Fatal("relay entry vanished without a key")
	}
	// Re-register: delivery resumes and the round closes.
	if err := px.RegisterRemote(addr, rs); err != nil {
		t.Fatal(err)
	}
	flushTier(t, px, shardPx)
	waitServerRound(t, agg, 1)
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("aggregate diverged after key re-registration")
	}
}

// TestDedupWindowAgedOutStale pins the -dedup-window satellite: an id
// that aged out of the FIFO is rejected with 409 (+ stale marker) via
// the sender sequence watermark instead of being silently re-absorbed,
// while a lost-ack redelivery of the sender's LAST applied entry still
// acks 200.
func TestDedupWindowAgedOutStale(t *testing.T) {
	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), 100)
	if err != nil {
		t.Fatal(err)
	}
	agg.SetDedupWindow(1)
	srv := httptest.NewServer(agg.Handler())
	t.Cleanup(srv.Close)

	post := func(id, sender string, seq int, body []byte) *http.Response {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/batch", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", wire.ContentTypeBatch)
		req.Header.Set(wire.HeaderBatch, id)
		if sender != "" {
			req.Header.Set(wire.HeaderSender, sender)
			req.Header.Set(wire.HeaderBatchSeq, fmt.Sprintf("%d", seq))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	batch := func(i int) []byte {
		raw, err := nn.EncodeParamSet(perturbed(testArch().New(1).SnapshotParams(), 1, float64(i*10))[0])
		if err != nil {
			t.Fatal(err)
		}
		enc, err := wire.BatchEnvelope{Updates: [][]byte{raw}}.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}

	b1, b2, b3 := batch(1), batch(2), batch(3)
	if resp := post("id1", "s1", 1, b1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first delivery: %s", resp.Status)
	}
	if resp := post("id2", "s1", 2, b2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second delivery: %s", resp.Status)
	}
	// id1 aged out (window=1) and seq 1 < watermark 2 → stale 409.
	resp := post("id1", "s1", 1, b1)
	if resp.StatusCode != http.StatusConflict || resp.Header.Get(wire.HeaderStale) == "" {
		t.Fatalf("aged-out redelivery: %s (stale=%q), want 409 + stale marker", resp.Status, resp.Header.Get(wire.HeaderStale))
	}
	// id2 still in the window → plain duplicate ack.
	if resp := post("id2", "s1", 2, b2); resp.StatusCode != http.StatusOK {
		t.Fatalf("in-window redelivery: %s, want 200", resp.Status)
	}
	// Another sender evicts id2 from the window...
	if resp := post("id3", "s2", 1, b3); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other sender: %s", resp.Status)
	}
	// ...but redelivering s1's LAST applied entry (lost ack) still acks.
	if resp := post("id2", "s1", 2, b2); resp.StatusCode != http.StatusOK {
		t.Fatalf("lost-ack redelivery at the watermark: %s, want 200", resp.Status)
	}
	// Exactly 3 distinct updates were absorbed.
	var sst wire.ServerStatus
	sresp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&sst); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sst.UpdatesInRound != 3 {
		t.Fatalf("server absorbed %d updates, want exactly 3", sst.UpdatesInRound)
	}
}

// TestDeliveryNoBatchProgressAcrossRestart pins the durable-progress
// satellite: per-update (NoBatch) delivery interrupted by an outage AND
// a proxy crash resumes from the persisted marker — every update reaches
// the server exactly once.
func TestDeliveryNoBatchProgressAcrossRestart(t *testing.T) {
	const c = 4
	platform, encl := fixtures(t)
	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), c)
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu       sync.Mutex
		accepted int
		gateOpen bool
	)
	gate := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			mu.Lock()
			ok := gateOpen || accepted < 2
			if ok {
				accepted++
			}
			mu.Unlock()
			if !ok {
				http.Error(w, "outage", http.StatusServiceUnavailable)
				return
			}
		}
		agg.Handler().ServeHTTP(w, r)
	})
	aggSrv := httptest.NewServer(gate)
	t.Cleanup(aggSrv.Close)

	dir := t.TempDir()
	outboxDir := filepath.Join(dir, "outbox")
	cfg := ShardedConfig{
		Upstream: aggSrv.URL, K: 1, RoundSize: c, Shards: 1, Seed: 61,
		NoBatch: true, OutboxDir: outboxDir,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}
	px1, err := NewSharded(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	px1Srv := httptest.NewServer(px1.Handler())
	updates := perturbed(testArch().New(1).SnapshotParams(), c, 170)
	for i, u := range updates {
		resp := sendRaw(t, encl, px1Srv.URL, "", u)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: %s", i, resp.Status)
		}
	}
	// Two singles land, the third hits the outage.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := accepted
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d singles accepted before the outage", n)
		}
		time.Sleep(time.Millisecond)
	}
	// Crash the proxy. The progress marker must be on disk.
	px1Srv.Close()
	px1.Close()
	names, err := os.ReadDir(outboxDir)
	if err != nil {
		t.Fatal(err)
	}
	foundProg := false
	for _, de := range names {
		if filepath.Ext(de.Name()) == ".prog" {
			foundProg = true
		}
	}
	if !foundProg {
		t.Fatal("no .prog marker persisted before the crash")
	}

	mu.Lock()
	gateOpen = true
	mu.Unlock()
	px2, err := NewSharded(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px2.Close)
	flushTier(t, px2)
	waitServerRound(t, agg, 1)
	mu.Lock()
	total := accepted
	mu.Unlock()
	if total != c {
		t.Fatalf("server accepted %d POSTs, want exactly %d (resume must not re-send)", total, c)
	}
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("aggregate diverged across the NoBatch crash-resume")
	}
}

// TestOutboxQuarantinedSurfaced pins the operator-surface satellite:
// .bad files left by a previous process are counted into the status.
func TestOutboxQuarantinedSurfaced(t *testing.T) {
	platform, encl := fixtures(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "ob-0000000000000001.ent.bad"), []byte("junk"), 0o600); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	t.Cleanup(srv.Close)
	px, err := NewSharded(ShardedConfig{
		Upstream: srv.URL, K: 1, RoundSize: 2, Shards: 1, Seed: 63, OutboxDir: dir,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	if got := px.Status().OutboxQuarantined; got != 1 {
		t.Fatalf("OutboxQuarantined = %d, want 1 (the leftover .bad file)", got)
	}
}

// FuzzTopologyEquivalence is the routing plane's acceptance property:
// for arbitrary shard counts P→P′ across an epoch-boundary reshard,
// hash-quota vs round-robin vs sticky routing, and local vs remote shard
// placement, every round's delivered mean equals the classic FedAvg mean
// of its inputs at 1e-9.
func FuzzTopologyEquivalence(f *testing.F) {
	f.Add(uint8(1), uint8(2), uint8(0), uint8(3), false, int64(1), false)
	f.Add(uint8(2), uint8(3), uint8(1), uint8(4), false, int64(2), true)
	f.Add(uint8(3), uint8(1), uint8(2), uint8(5), true, int64(3), false)
	f.Add(uint8(2), uint8(2), uint8(2), uint8(0), true, int64(4), true)
	f.Fuzz(func(t *testing.T, pRaw, pPrimeRaw, modeRaw, cRaw uint8, remote bool, seed int64, loop bool) {
		p := int(pRaw)%4 + 1
		pPrime := int(pPrimeRaw)%4 + 1
		modes := []route.Mode{route.ModeSticky, route.ModeRoundRobin, route.ModeHashQuota}
		mode := modes[int(modeRaw)%len(modes)]
		if remote && mode == route.ModeSticky {
			// Remote placement requires a quota-enforcing mode (the
			// topology constructor rejects sticky+remote).
			mode = route.ModeHashQuota
		}
		nextMode := modes[(int(modeRaw)+1)%len(modes)]
		c := maxInt(p, pPrime) + int(cRaw)%7
		platform, encl := fixtures(t)
		initial := testArch().New(1).SnapshotParams()

		agg, err := NewAggServer(initial, c)
		if err != nil {
			t.Fatal(err)
		}
		obs := &roundObserver{}
		agg.SetObserver(obs)
		// Transport dimension: the reshard equivalence must hold over
		// the in-process Loopback exactly as over HTTP.
		tn := newTestNet(t, loop)
		aggEP := tn.serve("loop://agg", agg)

		// Round-1 topology: P shards; optionally the last one remote (its
		// own enclave, reached over the hop leg).
		cfg := ShardedConfig{
			Upstream: aggEP, K: 1, RoundSize: c, Seed: seed,
			Routing:   mode,
			RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
			Transport: tn.cfgTransport(),
		}
		specs := make([]route.ShardSpec, p)
		if remote && p >= 2 {
			quotaTopo, err := route.New(0, mode, c, specs)
			if err != nil {
				t.Fatal(err)
			}
			_, addr, rs := remoteShardFixtureOver(t, platform, tn.lb, aggEP, quotaTopo.Quota(p-1), seed+1000)
			specs[p-1].Addr = addr
			cfg.RemoteShards = map[string]RemoteShard{addr: rs}
		}
		cfg.ShardSpecs = specs
		px, err := NewSharded(cfg, encl, platform)
		if err != nil {
			t.Fatal(err)
		}
		defer px.Close()
		pxEP := tn.serve("loop://front", px)

		send := func(sent []nn.ParamSet) {
			for i, u := range sent {
				sendTyped(t, tn.tr(), encl, pxEP, fmt.Sprintf("fz-%d", i), u)
			}
		}
		round0 := perturbed(initial, c, 10)
		send(round0)
		waitServerRound(t, agg, 1)

		// Epoch-boundary reshard: P→P′ and a different routing mode.
		if _, err := px.StageTopology(context.Background(), wire.TopologyDirective{
			Mode:   nextMode.String(),
			Shards: make([]wire.TopologyShardSpec, pPrime),
		}); err != nil {
			t.Fatal(err)
		}
		round1 := perturbed(initial, c, 2000)
		send(round1)
		waitServerRound(t, agg, 2)
		if got := px.Topology().P(); got != pPrime {
			t.Fatalf("post-reshard P = %d, want %d", got, pPrime)
		}

		assertRoundMean(t, obs, 0, round0)
		assertRoundMean(t, obs, 1, round1)
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
