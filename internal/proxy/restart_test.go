package proxy

import (
	"context"
	"net/http/httptest"
	"testing"

	"mixnn/internal/nn"
)

// TestProxyRestartMidRound is the failure-injection test for the sealed
// mixer state: a proxy dies after buffering half a round; a replacement
// proxy (same enclave) restores the sealed state and finishes the round.
// The server must still receive every participant's material exactly once
// (aggregation equivalence across the crash).
func TestProxyRestartMidRound(t *testing.T) {
	platform, encl := fixtures(t)
	const clients = 6

	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), clients)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)

	cfg := Config{Upstream: aggSrv.URL, K: 3, RoundSize: clients, Seed: 9}
	px1, err := New(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	px1Srv := httptest.NewServer(px1.Handler())

	ctx := context.Background()
	arch := testArch()
	updates := make([]nn.ParamSet, clients)
	for i := range updates {
		updates[i] = arch.New(int64(100 + i)).SnapshotParams()
	}

	send := func(url string, u nn.ParamSet) error {
		p := NewParticipant(url, aggSrv.URL, nil)
		if err := p.Attest(ctx, platform.AttestationPublicKey(), encl.Measurement()); err != nil {
			return err
		}
		return p.SendUpdate(ctx, u)
	}

	// First half of the round through proxy 1.
	for i := 0; i < 3; i++ {
		if err := send(px1Srv.URL, updates[i]); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	// Crash: seal state, kill the proxy.
	blob, err := px1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	px1Srv.Close()

	// Replacement proxy restores the sealed buffer.
	px2, err := New(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	if err := px2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if px2.Status().Buffered != 3 {
		t.Fatalf("restored buffer = %d, want 3", px2.Status().Buffered)
	}
	px2Srv := httptest.NewServer(px2.Handler())
	t.Cleanup(px2Srv.Close)

	// Second half through the replacement.
	for i := 3; i < clients; i++ {
		if err := send(px2Srv.URL, updates[i]); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	if agg.Round() != 1 {
		t.Fatalf("server round = %d, want 1 (round incomplete after restart)", agg.Round())
	}
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("aggregate wrong after proxy restart (material lost or duplicated)")
	}
}

func TestRestoreStateRejectsForeignBlob(t *testing.T) {
	platform, encl := fixtures(t)
	srv := httptest.NewServer(nil)
	t.Cleanup(srv.Close)
	px, err := New(Config{Upstream: srv.URL, K: 2, RoundSize: 4, Seed: 1}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	if err := px.RestoreState([]byte("garbage")); err == nil {
		t.Fatal("garbage blob accepted")
	}
}
