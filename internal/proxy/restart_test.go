package proxy

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/fl"
	"mixnn/internal/nn"
	"mixnn/internal/wire"
)

// TestProxyRestartMidRound is the failure-injection test for the sealed
// mixer state: a proxy dies after buffering half a round; a replacement
// proxy (same enclave) restores the sealed state and finishes the round.
// The server must still receive every participant's material exactly once
// (aggregation equivalence across the crash).
func TestProxyRestartMidRound(t *testing.T) {
	platform, encl := fixtures(t)
	const clients = 6

	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), clients)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)

	cfg := Config{Upstream: aggSrv.URL, K: 3, RoundSize: clients, Seed: 9}
	px1, err := New(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px1.Close)
	px1Srv := httptest.NewServer(px1.Handler())

	ctx := context.Background()
	arch := testArch()
	updates := make([]nn.ParamSet, clients)
	for i := range updates {
		updates[i] = arch.New(int64(100 + i)).SnapshotParams()
	}

	send := func(url string, u nn.ParamSet) error {
		p := NewParticipant(url, aggSrv.URL, nil)
		if err := p.Attest(ctx, platform.AttestationPublicKey(), encl.Measurement()); err != nil {
			return err
		}
		return p.SendUpdate(ctx, u)
	}

	// First half of the round through proxy 1.
	for i := 0; i < 3; i++ {
		if err := send(px1Srv.URL, updates[i]); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	// Crash: seal state, kill the proxy.
	blob, err := px1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	px1Srv.Close()

	// Replacement proxy restores the sealed buffer.
	px2, err := New(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px2.Close)
	if err := px2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if px2.Status().Buffered != 3 {
		t.Fatalf("restored buffer = %d, want 3", px2.Status().Buffered)
	}
	px2Srv := httptest.NewServer(px2.Handler())
	t.Cleanup(px2Srv.Close)

	// Second half through the replacement.
	for i := 3; i < clients; i++ {
		if err := send(px2Srv.URL, updates[i]); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	flushTier(t, px2)
	if agg.Round() != 1 {
		t.Fatalf("server round = %d, want 1 (round incomplete after restart)", agg.Round())
	}
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("aggregate wrong after proxy restart (material lost or duplicated)")
	}
}

func TestRestoreStateRejectsForeignBlob(t *testing.T) {
	platform, encl := fixtures(t)
	srv := httptest.NewServer(nil)
	t.Cleanup(srv.Close)
	px, err := New(Config{Upstream: srv.URL, K: 2, RoundSize: 4, Seed: 1}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	if err := px.RestoreState([]byte("garbage")); err == nil {
		t.Fatal("garbage blob accepted")
	}

	// A blob sealed by a DIFFERENT enclave identity must not restore:
	// sealing keys are measurement-bound, so a compromised host cannot
	// graft one proxy's buffered round onto another.
	other, err := enclave.New(enclave.Config{CodeIdentity: "other-proxy", RSABits: 1024}, platform)
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := NewSharded(ShardedConfig{Upstream: srv.URL, K: 2, RoundSize: 4, Shards: 2, Seed: 2}, other, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(foreign.Close)
	blob, err := foreign.SealState()
	if err != nil {
		t.Fatal(err)
	}
	if err := px.RestoreState(blob); err == nil {
		t.Fatal("blob sealed by a different enclave identity accepted")
	}
}

// TestShardedCrashRestartReshardE2E is the crash-restart battery's
// centrepiece over the real wire protocol: a cascade tier (participants →
// sharded front proxy → hop proxy → aggregation server) loses its front
// proxy after half the round; the sealed state restores into a
// replacement with a DIFFERENT shard count, the remaining participants
// finish the round through it, and the server-side aggregate must equal
// the classic-FL mean — nothing lost, nothing double-counted, across both
// the crash and the reshard.
func TestShardedCrashRestartReshardE2E(t *testing.T) {
	platform, frontEncl := fixtures(t)
	hopEncl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-restart-hop"}, platform)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 6
	initial := testArch().New(1).SnapshotParams()
	agg, err := NewAggServer(initial, clients)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)

	hopPx, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, K: 3, RoundSize: clients, Seed: 21,
		HopSecret: "restart-secret",
	}, hopEncl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hopPx.Close)
	hopSrv := httptest.NewServer(hopPx.Handler())
	t.Cleanup(hopSrv.Close)

	ctx := context.Background()
	hopKey, err := AttestHop(ctx, hopSrv.URL, nil, platform.AttestationPublicKey(), hopEncl.Measurement())
	if err != nil {
		t.Fatal(err)
	}
	frontCfg := ShardedConfig{
		NextHop: hopSrv.URL, NextHopKey: hopKey, NextHopSecret: "restart-secret",
		K: 2, RoundSize: clients, Shards: 2, Seed: 22,
	}
	front1, err := NewSharded(frontCfg, frontEncl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(front1.Close)
	front1Srv := httptest.NewServer(front1.Handler())

	updates := make([]nn.ParamSet, clients)
	for i := range updates {
		u := initial.Clone()
		u.Layers[0].Tensors[0].AddScalar(float64(i + 1))
		u.Layers[len(u.Layers)-1].Tensors[0].AddScalar(-2 * float64(i+1))
		updates[i] = u
	}
	send := func(url string, u nn.ParamSet) error {
		p := NewParticipant(url, aggSrv.URL, nil)
		if err := p.Attest(ctx, platform.AttestationPublicKey(), frontEncl.Measurement()); err != nil {
			return err
		}
		return p.SendUpdate(ctx, u)
	}

	// First half of the round through the 2-shard front.
	for i := 0; i < clients/2; i++ {
		if err := send(front1Srv.URL, updates[i]); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	// Crash: seal the tier, kill the proxy.
	blob, err := front1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	front1Srv.Close()

	// The replacement tier runs THREE shards instead of two.
	reshardCfg := frontCfg
	reshardCfg.Shards = 3
	front2, err := NewSharded(reshardCfg, frontEncl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(front2.Close)
	if err := front2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	st := front2.Status()
	if st.RestoredFrom != 2 || len(st.Shards) != 3 {
		t.Fatalf("restored_from=%d shards=%d, want 2 and 3", st.RestoredFrom, len(st.Shards))
	}
	if st.InRound != clients/2 {
		t.Fatalf("restored in_round = %d, want %d", st.InRound, clients/2)
	}
	buffered := 0
	for _, sh := range st.Shards {
		buffered += sh.Buffered
	}
	if got := st.Received + st.HopReceived - st.Forwarded; buffered != got {
		t.Fatalf("restored buffer %d inconsistent with ledger (in %d, out %d)", buffered, st.Received+st.HopReceived, st.Forwarded)
	}
	front2Srv := httptest.NewServer(front2.Handler())
	t.Cleanup(front2Srv.Close)

	// Second half through the resharded replacement.
	for i := clients / 2; i < clients; i++ {
		if err := send(front2Srv.URL, updates[i]); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	flushTier(t, front2, hopPx)
	if agg.Round() != 1 {
		t.Fatalf("server round = %d, want 1 (round incomplete after reshard restart)", agg.Round())
	}
	classic := fl.NewServer(initial)
	if err := classic.Aggregate(updates); err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(classic.Global(), 1e-9) {
		t.Fatal("aggregate != classic FL mean after crash-restart reshard")
	}
	if hopSt := hopPx.Status(); hopSt.HopReceived != clients {
		t.Fatalf("hop received %d cascade updates, want %d", hopSt.HopReceived, clients)
	}
	for _, sh := range front2.Status().Shards {
		if sh.Buffered != 0 {
			t.Fatalf("shard %d still buffers %d after round close", sh.Shard, sh.Buffered)
		}
	}
}

// TestSealStateConcurrentWithIngress runs the sealer against live
// traffic under the race detector: SealState must snapshot a
// round-consistent tier while concurrent /v1/update requests mix, and
// the round must still close with exact aggregation equivalence.
func TestSealStateConcurrentWithIngress(t *testing.T) {
	platform, encl := fixtures(t)
	const clients, shards = 24, 3
	agg, px, proxyURL, _ := shardedDeployment(t, clients, 2, shards)

	base := testArch().New(1).SnapshotParams()
	updates := make([]nn.ParamSet, clients)
	for i := range updates {
		u := base.Clone()
		u.Layers[0].Tensors[0].AddScalar(float64(i + 1))
		updates[i] = u
	}

	done := make(chan struct{})
	var sealWG sync.WaitGroup
	sealWG.Add(1)
	go func() {
		defer sealWG.Done()
		for {
			select {
			case <-done:
				return
			// Yield between snapshots: each iteration is crypto-heavy
			// (seal + probe restore), and a flat-out loop can starve the
			// senders' dials when sibling test binaries saturate the CPU.
			case <-time.After(time.Millisecond):
			}
			blob, err := px.SealState()
			if err != nil {
				t.Errorf("concurrent SealState: %v", err)
				return
			}
			// Every snapshot must be round-consistent: it restores into
			// a fresh tier, and the restored buffer matches the sealed
			// ledger (ingested minus forwarded), never a torn view.
			probe, err := NewSharded(ShardedConfig{
				Upstream: "http://unused", K: 2, RoundSize: clients, Shards: shards, Seed: 43,
			}, encl, platform)
			if err != nil {
				t.Errorf("probe tier: %v", err)
				return
			}
			if err := probe.RestoreState(blob); err != nil {
				probe.Close()
				t.Errorf("mid-traffic blob failed to restore: %v", err)
				return
			}
			st := probe.Status()
			probe.Close()
			buffered := 0
			for _, sh := range st.Shards {
				buffered += sh.Buffered
			}
			// forwarded lags emission (it counts after the upstream post,
			// outside the mixing mutex), so in-flight material makes this
			// an inequality: buffered can never EXCEED ingested minus
			// forwarded without double-counting.
			if buffered > st.Received+st.HopReceived-st.Forwarded {
				t.Errorf("torn snapshot: buffered %d, ledger in %d out %d",
					buffered, st.Received+st.HopReceived, st.Forwarded)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := sendRaw(t, encl, proxyURL, fmt.Sprintf("client-%d", i), updates[i])
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs <- fmt.Errorf("participant %d: %s", i, resp.Status)
			}
		}(i)
	}
	wg.Wait()
	close(done)
	sealWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	flushTier(t, px)
	if agg.Round() != 1 {
		t.Fatalf("server round = %d, want 1", agg.Round())
	}
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(want, 1e-9) {
		t.Fatal("concurrent sealing broke aggregation equivalence")
	}
}

// TestSealedMidTrafficBlobRestores seals a tier that is mid-round (not
// at a quiescent point) and proves the snapshot is usable: it restores
// into a fresh tier whose buffer matches the sealed ledger.
func TestSealedMidTrafficBlobRestores(t *testing.T) {
	platform, encl := fixtures(t)
	const clients = 8
	_, px, proxyURL, _ := shardedDeployment(t, clients, 2, 2)

	for i := 0; i < 5; i++ {
		resp := sendRaw(t, encl, proxyURL, "", testArch().New(int64(30+i)).SnapshotParams())
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("send %d: %s", i, resp.Status)
		}
	}
	blob, err := px.SealState()
	if err != nil {
		t.Fatal(err)
	}
	st := px.Status()

	restored, err := NewSharded(ShardedConfig{
		Upstream: "http://unused", K: 2, RoundSize: clients, Shards: 4, Seed: 5,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restored.Close)
	if err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	rst := restored.Status()
	if rst.InRound != st.InRound || rst.Received != st.Received || rst.Forwarded != st.Forwarded {
		t.Fatalf("restored ledger %+v does not match sealed %+v", rst, st)
	}
	var sealedBuf, restoredBuf int
	for _, sh := range st.Shards {
		sealedBuf += sh.Buffered
	}
	for _, sh := range rst.Shards {
		restoredBuf += sh.Buffered
	}
	if sealedBuf != restoredBuf {
		t.Fatalf("restored buffer %d, sealed %d", restoredBuf, sealedBuf)
	}
}

// TestSingleProxyRejectsForgedHopHeader is the regression test for the
// pre-consolidation drift: the single proxy used to accept forged
// X-Mixnn-Hop headers on /v1/update because the check lived only on the
// sharded path. As a Shards=1 wrapper it now shares the sharded ingress.
func TestSingleProxyRejectsForgedHopHeader(t *testing.T) {
	_, encl := fixtures(t)
	_, _, proxyURL, _ := testDeployment(t, 4, 2)

	raw, err := nn.EncodeParamSet(testArch().New(2).SnapshotParams())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := enclave.Encrypt(encl.PublicKey(), raw)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, proxyURL+"/v1/update", bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(wire.HeaderHop, "3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forged hop header on single proxy returned %s, want 400", resp.Status)
	}

	// Without the forged header the same ciphertext is accepted.
	resp, err = http.Post(proxyURL+"/v1/update", wire.ContentTypeUpdate, bytes.NewReader(ct))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("clean update returned %s, want 202", resp.Status)
	}
}

func TestRestoreStateRejectsAfterTraffic(t *testing.T) {
	_, encl := fixtures(t)
	_, px, proxyURL, _ := shardedDeployment(t, 4, 2, 2)
	blob, err := px.SealState()
	if err != nil {
		t.Fatal(err)
	}
	resp := sendRaw(t, encl, proxyURL, "", testArch().New(3).SnapshotParams())
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("send: %s", resp.Status)
	}
	if err := px.RestoreState(blob); err == nil {
		t.Fatal("restore into a proxy that already processed updates accepted")
	}
}
