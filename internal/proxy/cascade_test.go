package proxy

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/fl"
	"mixnn/internal/nn"
)

// TestCascadeEndToEnd is the full-topology integration test: participants
// → sharded front proxy → cascade hop proxy → aggregation server, all over
// the real wire protocol. The front tier mixes within 2 shards and
// re-encrypts its output for the hop enclave; the hop tier re-mixes across
// the whole round and forwards plaintext upstream. The round must close
// and the global model must equal what classic FL computes from the same
// updates.
func TestCascadeEndToEnd(t *testing.T) {
	platform, frontEncl := fixtures(t)
	hopEncl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-hop"}, platform)
	if err != nil {
		t.Fatal(err)
	}

	const clients, shards = 6, 2
	initial := testArch().New(1).SnapshotParams()

	agg, err := NewAggServer(initial, clients)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)

	// Hop tier: receives the front tier's C mixed updates per round,
	// re-mixes them in a single shard and forwards plaintext upstream.
	hopPx, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, K: 3, RoundSize: clients, Seed: 7,
		HopSecret: "inter-proxy-secret",
	}, hopEncl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hopPx.Close)
	hopSrv := httptest.NewServer(hopPx.Handler())
	t.Cleanup(hopSrv.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Front tier pins the hop enclave via the real attestation handshake.
	hopKey, err := AttestHop(ctx, hopSrv.URL, nil, platform.AttestationPublicKey(), hopEncl.Measurement())
	if err != nil {
		t.Fatal(err)
	}
	frontPx, err := NewSharded(ShardedConfig{
		NextHop: hopSrv.URL, NextHopKey: hopKey, NextHopSecret: "inter-proxy-secret",
		K: 2, RoundSize: clients, Shards: shards, Seed: 8,
	}, frontEncl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(frontPx.Close)
	frontSrv := httptest.NewServer(frontPx.Handler())
	t.Cleanup(frontSrv.Close)

	// Participants attest the front proxy, perturb the model (standing in
	// for local training) and send concurrently.
	updates := make([]nn.ParamSet, clients)
	for i := range updates {
		u := initial.Clone()
		u.Layers[0].Tensors[0].AddScalar(float64(i + 1))
		u.Layers[len(u.Layers)-1].Tensors[0].AddScalar(-float64(i + 1))
		updates[i] = u
	}
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := NewParticipant(frontSrv.URL, aggSrv.URL, nil)
			if err := p.Attest(ctx, platform.AttestationPublicKey(), frontEncl.Measurement()); err != nil {
				errc <- err
				return
			}
			if err := p.SendUpdate(ctx, updates[i]); err != nil {
				errc <- err
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Both mixing rounds and the aggregation round must have closed once
	// the two delivery pipelines drain (front before the hop it feeds).
	flushTier(t, frontPx, hopPx)
	if agg.Round() != 1 {
		t.Fatalf("server round = %d, want 1", agg.Round())
	}
	frontSt, hopSt := frontPx.Status(), hopPx.Status()
	if frontSt.Received != clients || frontSt.Forwarded != clients || frontSt.Rounds != 1 {
		t.Fatalf("front status = %+v", frontSt)
	}
	if frontSt.BatchesSent != 1 {
		t.Fatalf("front sent %d batches, want 1 (the round coalesced into one /v1/batch)", frontSt.BatchesSent)
	}
	if hopSt.HopReceived != clients || hopSt.Received != 0 || hopSt.Forwarded != clients || hopSt.Rounds != 1 {
		t.Fatalf("hop status = %+v", hopSt)
	}
	for _, sh := range frontSt.Shards {
		if sh.Buffered != 0 {
			t.Fatalf("front shard %d still buffers %d after round close", sh.Shard, sh.Buffered)
		}
	}

	// Global-model equality with classic FL: an unprotected server
	// aggregating the raw updates must produce the same global model as
	// the cascade produced from the mixed ones.
	classic := fl.NewServer(initial)
	if err := classic.Aggregate(updates); err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(classic.Global(), 1e-9) {
		t.Fatal("cascaded sharded mixing broke equality with classic FL aggregation")
	}
}

// TestCascadeRejectsUnattestedHopTraffic: ciphertext encrypted for the
// WRONG enclave (the front one) must be rejected by the hop tier —
// cascade security rests on per-hop keys.
func TestCascadeRejectsUnattestedHopTraffic(t *testing.T) {
	platform, frontEncl := fixtures(t)
	hopEncl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-hop-2", RSABits: 1024}, platform)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)
	hopPx, err := NewSharded(ShardedConfig{Upstream: aggSrv.URL, RoundSize: 2, Seed: 9}, hopEncl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hopPx.Close)
	hopSrv := httptest.NewServer(hopPx.Handler())
	t.Cleanup(hopSrv.Close)

	resp := sendRaw(t, frontEncl, hopSrv.URL, "", testArch().New(2).SnapshotParams())
	resp.Body.Close()
	if resp.StatusCode == 202 {
		t.Fatal("hop tier accepted ciphertext for a different enclave")
	}
}

// TestHopSecretGatesHopEndpoint: with a HopSecret configured, /v1/hop
// rejects requests without the inter-proxy bearer token — an outsider
// holding the (public) enclave key must not be able to poison the round's
// hop watermark.
func TestHopSecretGatesHopEndpoint(t *testing.T) {
	platform, encl := fixtures(t)
	agg, err := NewAggServer(testArch().New(1).SnapshotParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	aggSrv := httptest.NewServer(agg.Handler())
	t.Cleanup(aggSrv.Close)
	px, err := NewSharded(ShardedConfig{
		Upstream: aggSrv.URL, RoundSize: 2, Seed: 11, HopSecret: "s3cret",
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	pxSrv := httptest.NewServer(px.Handler())
	t.Cleanup(pxSrv.Close)

	raw, err := nn.EncodeParamSet(testArch().New(5).SnapshotParams())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := enclave.Encrypt(encl.PublicKey(), raw)
	if err != nil {
		t.Fatal(err)
	}
	post := func(auth string) int {
		req, err := http.NewRequest(http.MethodPost, pxSrv.URL+"/v1/hop", bytes.NewReader(ct))
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(""); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated hop returned %d, want 401", code)
	}
	if code := post("Bearer wrong"); code != http.StatusUnauthorized {
		t.Fatalf("wrong-secret hop returned %d, want 401", code)
	}
	if code := post("Bearer s3cret"); code != http.StatusAccepted {
		t.Fatalf("authorized hop returned %d, want 202", code)
	}
	if st := px.Status(); st.HopReceived != 1 {
		t.Fatalf("hop_received = %d, want 1 (only the authorized request)", st.HopReceived)
	}
}
