package proxy

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestStatusConsistentUnderDelivery pins the torn-snapshot fix in
// ShardedProxy.Status: OutboxPending and OutboxLanes used to be read in
// separate lock acquisitions (queue length at one instant, per-lane
// stats at another), so a poller racing the dispatcher could see a
// composite that added up to nonsense. Now both come from ONE queue
// snapshot, so every Status the poller sees must satisfy
// OutboxPending == Σ lanes.Pending, with per-lane Delivered and the
// ingest counter monotone. Run under -race this also covers the
// counter reads themselves.
func TestStatusConsistentUnderDelivery(t *testing.T) {
	const roundSize, rounds, senders = 4, 24, 4
	platform, encl := fixtures(t)
	agg, px, tr, frontEP, _ := deployTier(t, "loopback", encl, platform, roundSize, 1, 811)

	stop := make(chan struct{})
	pollErr := make(chan error, 1)
	go func() {
		defer close(pollErr)
		lastDelivered := map[string]uint64{}
		var lastReceived int
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := px.Status()
			sum := 0
			for _, ls := range st.OutboxLanes {
				sum += ls.Pending
				if ls.Delivered < lastDelivered[ls.Dest] {
					pollErr <- fmt.Errorf("lane %s Delivered went backwards: %d after %d", ls.Dest, ls.Delivered, lastDelivered[ls.Dest])
					return
				}
				lastDelivered[ls.Dest] = ls.Delivered
			}
			if st.OutboxPending != sum {
				pollErr <- fmt.Errorf("torn snapshot: OutboxPending=%d but lanes sum to %d (%+v)", st.OutboxPending, sum, st.OutboxLanes)
				return
			}
			if st.Received < lastReceived {
				pollErr <- fmt.Errorf("Received went backwards: %d after %d", st.Received, lastReceived)
				return
			}
			lastReceived = st.Received
		}
	}()

	initial := testArch().New(1).SnapshotParams()
	updates := perturbed(initial, roundSize*rounds, 811)
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < len(updates); i += senders {
				sendTyped(t, tr, encl, frontEP, fmt.Sprintf("status-%d", i), updates[i])
			}
		}(s)
	}
	wg.Wait()

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st := px.Status(); st.OutboxPending == 0 && st.Rounds == rounds {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	if err, raced := <-pollErr; raced && err != nil {
		t.Fatal(err)
	}
	st := px.Status()
	if st.Rounds != rounds || st.OutboxPending != 0 {
		t.Fatalf("tier did not drain: rounds=%d pending=%d, want %d rounds and an empty outbox", st.Rounds, st.OutboxPending, rounds)
	}
	if got := agg.Round(); got != rounds {
		t.Fatalf("agg closed %d rounds, want %d", got, rounds)
	}
}
