package proxy

// End-to-end batteries for the session-keyed enclave crypto: the SDK
// and the delivery dispatcher must survive session loss (proxy restart,
// cache eviction) by re-establishing transparently, with exactly-once
// aggregation intact.

import (
	"context"
	"testing"
	"time"

	"mixnn/internal/client"
	"mixnn/internal/enclave"
	"mixnn/internal/fl"
	"mixnn/internal/nn"
	"mixnn/internal/transport"
)

// sessionEnclave builds a dedicated small-key enclave (the shared
// fixture enclave must not have its sessions reset under other tests).
func sessionEnclave(t *testing.T, cfg enclave.Config) (*enclave.Platform, *enclave.Enclave) {
	t.Helper()
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RSABits == 0 {
		cfg.RSABits = 1024
	}
	encl, err := enclave.New(cfg, platform)
	if err != nil {
		t.Fatal(err)
	}
	return platform, encl
}

// sessionParticipant builds an SDK session pinned to encl over tr.
func sessionParticipant(t *testing.T, tr transport.Transport, encl *enclave.Enclave, frontEP, aggEP, id string) *client.Participant {
	t.Helper()
	p, err := client.New(client.Config{
		Proxies: []string{frontEP}, Server: aggEP, Transport: tr, ClientID: id,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.SetEnclaveKey(encl.PublicKey())
	return p
}

// TestSessionReestablishAcrossProxyRestart crashes the proxy mid-session:
// seal, stop, drop the enclave's volatile session cache (what a real
// restart loses), restart over the same outbox directory. The SDK's next
// send is a data message for a session the enclave no longer holds — the
// typed 428 drives a transparent re-establish, and aggregation stays
// exactly-once.
func TestSessionReestablishAcrossProxyRestart(t *testing.T) {
	platform, encl := sessionEnclave(t, enclave.Config{})
	const clients = 3
	initial := testArch().New(1).SnapshotParams()

	agg, err := NewAggServer(initial, clients)
	if err != nil {
		t.Fatal(err)
	}
	lb := transport.NewLoopback()
	lb.Register("loop://agg", agg)

	cfg := ShardedConfig{
		Upstream: "loop://agg", K: 1, RoundSize: clients, Shards: 2, Seed: 7,
		OutboxDir: t.TempDir(), Transport: lb,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}
	px1, err := NewSharded(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	lb.Register("loop://front", px1)
	part := sessionParticipant(t, lb, encl, "loop://front", "loop://agg", "p0")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	round1 := perturbed(initial, clients, 0)
	for i, u := range round1 {
		if err := part.SendUpdate(ctx, u); err != nil {
			t.Fatalf("round 1 send %d: %v", i, err)
		}
	}
	flushTier(t, px1)
	waitServerRound(t, agg, 1)
	if st := px1.Status(); st.SessionsEstablished != 1 || st.SessionHits < 2 {
		t.Fatalf("round 1 established/hits = %d/%d, want 1/>=2", st.SessionsEstablished, st.SessionHits)
	}

	// Crash: seal, stop, lose the volatile session cache, restart.
	blob, err := px1.SealState()
	if err != nil {
		t.Fatal(err)
	}
	px1.Close()
	encl.ResetSessions()
	px2, err := NewSharded(cfg, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px2.Close)
	if err := px2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	lb.Register("loop://front", px2)

	// The SDK still holds its old session: the first post-restart send is
	// rejected 428 and re-established transparently — no error surfaces.
	round2 := perturbed(initial, clients, 100)
	for i, u := range round2 {
		if err := part.SendUpdate(ctx, u); err != nil {
			t.Fatalf("round 2 send %d after restart: %v", i, err)
		}
	}
	flushTier(t, px2)
	waitServerRound(t, agg, 2)

	st := px2.Status()
	if st.SessionMisses < 1 {
		t.Fatalf("restart surfaced no session miss (misses = %d)", st.SessionMisses)
	}
	if st.SessionsEstablished < 1 {
		t.Fatalf("SDK did not re-establish (established = %d)", st.SessionsEstablished)
	}

	classic := fl.NewServer(initial)
	for _, round := range [][]nn.ParamSet{round1, round2} {
		if err := classic.Aggregate(round); err != nil {
			t.Fatal(err)
		}
	}
	if !agg.Global().ApproxEqual(classic.Global(), 1e-9) {
		t.Fatal("global model != classic FL mean across the session-crypto restart")
	}
}

// TestSessionHopReestablishAcrossCascade resets the DOWNSTREAM hop's
// session cache mid-stream: the front proxy's next batch delivery (a
// session data message) is rejected 428, the dispatcher invalidates the
// memoized body plus session and the retry re-establishes — the round
// delivers instead of being quarantined. Runs both delivery shapes:
// batched rounds (the memoized-body path) and per-update singles (the
// forwardOne path, which re-wraps fresh on every attempt).
func TestSessionHopReestablishAcrossCascade(t *testing.T) {
	for _, mode := range []struct {
		name    string
		noBatch bool
	}{{"batch", false}, {"singles", true}} {
		t.Run(mode.name, func(t *testing.T) {
			testSessionHopReestablish(t, mode.noBatch)
		})
	}
}

func testSessionHopReestablish(t *testing.T, noBatch bool) {
	frontPlat, frontEncl := sessionEnclave(t, enclave.Config{CodeIdentity: "front"})
	hopPlat, hopEncl := sessionEnclave(t, enclave.Config{CodeIdentity: "hop"})
	const clients = 3
	initial := testArch().New(1).SnapshotParams()

	agg, err := NewAggServer(initial, clients)
	if err != nil {
		t.Fatal(err)
	}
	lb := transport.NewLoopback()
	lb.Register("loop://agg", agg)

	hop, err := NewSharded(ShardedConfig{
		Upstream: "loop://agg", K: 1, RoundSize: clients, Shards: 1, Seed: 11,
		Transport: lb, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}, hopEncl, hopPlat)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hop.Close)
	lb.Register("loop://hop", hop)

	front, err := NewSharded(ShardedConfig{
		NextHop:    "loop://hop",
		NextHopKey: enclave.PinnedHop(hopEncl.PublicKey(), hopEncl.Measurement()),
		K:          1, RoundSize: clients, Shards: 1, Seed: 13, NoBatch: noBatch,
		Transport: lb, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}, frontEncl, frontPlat)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(front.Close)
	lb.Register("loop://front", front)

	sendRound := func(offset float64) []nn.ParamSet {
		t.Helper()
		round := perturbed(initial, clients, offset)
		for i, u := range round {
			sendTyped(t, lb, frontEncl, "loop://front", "", u)
			_ = i
		}
		flushTier(t, front, hop)
		return round
	}

	round1 := sendRound(0)
	waitServerRound(t, agg, 1)
	// The hop loses its volatile sessions (restart-equivalent); the
	// front's established delivery session is now unknown downstream.
	hopEncl.ResetSessions()
	round2 := sendRound(100)
	waitServerRound(t, agg, 2)

	if st := front.Status(); st.OutboxQuarantined != 0 {
		t.Fatalf("session loss quarantined %d entries", st.OutboxQuarantined)
	}
	if st := hop.Status(); st.SessionMisses < 1 || st.SessionsEstablished < 2 {
		t.Fatalf("hop misses/established = %d/%d, want >=1/>=2", st.SessionMisses, st.SessionsEstablished)
	}

	classic := fl.NewServer(initial)
	for _, round := range [][]nn.ParamSet{round1, round2} {
		if err := classic.Aggregate(round); err != nil {
			t.Fatal(err)
		}
	}
	if !agg.Global().ApproxEqual(classic.Global(), 1e-9) {
		t.Fatal("global model != classic FL mean across the hop session reset")
	}
}

// TestSessionEvictionReestablishE2E squeezes the proxy's session cache
// to a single entry: two participants alternating evict each other on
// every establish, so every send after the first round-trips through
// the 428 → re-establish path — and every send still succeeds
// transparently.
func TestSessionEvictionReestablishE2E(t *testing.T) {
	platform, encl := sessionEnclave(t, enclave.Config{SessionCacheEntries: 1})
	const clients = 4
	initial := testArch().New(1).SnapshotParams()

	agg, err := NewAggServer(initial, clients)
	if err != nil {
		t.Fatal(err)
	}
	lb := transport.NewLoopback()
	lb.Register("loop://agg", agg)
	px, err := NewSharded(ShardedConfig{
		Upstream: "loop://agg", K: 1, RoundSize: clients, Shards: 1, Seed: 17,
		Transport: lb, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	lb.Register("loop://front", px)

	pa := sessionParticipant(t, lb, encl, "loop://front", "loop://agg", "pa")
	pb := sessionParticipant(t, lb, encl, "loop://front", "loop://agg", "pb")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	round := perturbed(initial, clients, 0)
	for i, u := range round {
		part := pa
		if i%2 == 1 {
			part = pb
		}
		if err := part.SendUpdate(ctx, u); err != nil {
			t.Fatalf("send %d under cache pressure: %v", i, err)
		}
	}
	flushTier(t, px)
	waitServerRound(t, agg, 1)

	st := px.Status()
	if st.SessionEvictions < 2 || st.SessionsEstablished < 3 {
		t.Fatalf("evictions/established = %d/%d, want >=2/>=3", st.SessionEvictions, st.SessionsEstablished)
	}
	classic := fl.NewServer(initial)
	if err := classic.Aggregate(round); err != nil {
		t.Fatal(err)
	}
	if !agg.Global().ApproxEqual(classic.Global(), 1e-9) {
		t.Fatal("global model != classic FL mean under session cache pressure")
	}
}
