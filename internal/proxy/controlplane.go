package proxy

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"mixnn/internal/health"
	"mixnn/internal/transport"
	"mixnn/internal/wire"
)

// This file is the sharded proxy's control plane: the admission gate in
// front of participant ingress (token-bucket per sender plus load
// shedding over live tier signals), the /v1/discover advertisement
// participant SDKs bootstrap their failover lists from, and the
// /v1/metrics operator registry. The data plane stays in sharded.go.

// signalCacheTTL bounds how stale the admission gate's Signals snapshot
// may be. Snapshotting per update would put two extra lock domains
// (dispatcher, p.mu) on the ingress hot path; 2ms staleness is
// irrelevant to thresholds that trip on sustained pressure.
const signalCacheTTL = 2 * time.Millisecond

// initControlPlane wires the admission gate and metrics registry from
// the config. Called once from NewSharded, before the tier serves.
func (p *ShardedProxy) initControlPlane() {
	p.admission = health.NewAdmission(health.AdmissionConfig{
		RatePerSec:        p.cfg.RatePerSec,
		Burst:             p.cfg.RateBurst,
		ShedQueueDepth:    p.cfg.ShedQueueDepth,
		ShedLaneBacklog:   p.cfg.ShedLaneBacklog,
		ShedDecryptMicros: p.cfg.ShedDecryptMicros,
	})
	if !p.cfg.DisableMetrics {
		p.metrics = health.NewRegistry()
		// The decrypt histogram is the one instrument observed inline
		// (per decrypt); everything else mirrors status counters at
		// scrape time. Bounds span session-path GCM (~100µs) through
		// RSA-fallback territory (>5ms).
		p.decryptHist = p.metrics.NewHistogram("mixnn_decrypt_us",
			"Per-update enclave decrypt latency in microseconds.",
			[]float64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000})
	}
}

// observeDecrypt records one enclave decrypt into the metrics
// histogram; a no-op with metrics disabled.
func (p *ShardedProxy) observeDecrypt(d time.Duration) {
	if p.decryptHist != nil {
		p.decryptHist.Observe(float64(d) / float64(time.Microsecond))
	}
}

// signals returns the admission gate's pressure snapshot, refreshed at
// most every signalCacheTTL. Lock order: sigMu alone, then (on refresh)
// the dispatcher's domain and p.mu in turn — never nested inside each
// other, and nothing takes sigMu while holding either.
func (p *ShardedProxy) signals() health.Signals {
	p.sigMu.Lock()
	defer p.sigMu.Unlock()
	if time.Since(p.sigAt) < signalCacheTTL {
		return p.sig
	}
	var sig health.Signals
	pending, maxLane := p.disp.Backlog()
	sig.LaneBacklog = maxLane
	if p.cfg.IngressDepth != nil {
		sig.QueueDepth = p.cfg.IngressDepth()
	} else {
		// No transport-level queue to observe (the HTTP daemon has no
		// bounded ingress queue): the committed-but-undelivered outbox
		// backlog is the tier's real ingress-to-egress queue, so it
		// stands in as the depth signal.
		sig.QueueDepth = pending
	}
	p.mu.Lock()
	sig.DecryptMicros = p.decryptT.meanMillisExact() * 1000
	p.mu.Unlock()
	p.sig, p.sigAt = sig, time.Now()
	return sig
}

// admit runs the admission gate for one participant update. nil means
// admitted; otherwise the typed 429 with the Retry-After hint. Anonymous
// senders (empty ClientID) share one bucket — an unidentified crowd is
// rate-limited as a whole rather than not at all.
func (p *ShardedProxy) admit(sender string) error {
	if !p.admission.Enabled() {
		return nil
	}
	ok, shed, retryAfter := p.admission.Allow(sender, p.signals())
	if ok {
		return nil
	}
	var msg string
	if shed {
		p.admShed.Add(1)
		msg = "proxy: ingress load-shedding, retry later"
	} else {
		p.admRate.Add(1)
		msg = fmt.Sprintf("proxy: sender %q over its update rate budget", sender)
	}
	return &transport.StatusError{
		Code:       http.StatusTooManyRequests,
		RetryAfter: retryAfter,
		Msg:        msg,
	}
}

// HandleDiscover implements transport.Server: the control-plane
// advertisement behind /v1/discover. Peers are endpoint strings only —
// a client probes each peer's own Discover for its health, and every
// learned peer still gates on attestation before material flows.
func (p *ShardedProxy) HandleDiscover(ctx context.Context) (wire.DiscoverResponse, error) {
	pending, maxLane := p.disp.Backlog()
	sig := p.signals()
	shedding := p.admission.Shedding(sig)

	p.mu.Lock()
	dr := wire.DiscoverResponse{
		Endpoint:    p.cfg.Endpoint,
		Peers:       append([]string(nil), p.cfg.Peers...),
		Epoch:       p.rounds,
		TopoVersion: p.topo.Version(),
		RoundSize:   p.topo.RoundSize(),
		InRound:     p.inRound,
	}
	for s := 0; s < p.topo.P(); s++ {
		dr.Shards = append(dr.Shards, wire.DiscoverShard{
			Shard: s,
			Quota: p.topo.Quota(s),
			Load:  p.rst.Load[s],
			Addr:  p.topo.Spec(s).Addr,
		})
	}
	p.mu.Unlock()

	dr.QueueDepth = sig.QueueDepth
	dr.OutboxPending = pending
	dr.LaneBacklogMax = maxLane
	dr.DecryptMicros = sig.DecryptMicros
	dr.Shedding = shedding
	dr.Health = health.Score(sig, shedding)
	return dr, nil
}

// WriteMetrics implements transport.MetricsSource: it syncs the
// registry from a fresh status snapshot (gauges set, monotonic totals
// mirrored via Counter.Set — the status fields stay the source of
// truth, /v1/status stays wire-compatible) and renders Prometheus text
// exposition. With metrics disabled it returns ErrNotSupported and the
// HTTP adapter answers 404.
func (p *ShardedProxy) WriteMetrics(w io.Writer) error {
	if p.metrics == nil {
		return transport.ErrNotSupported
	}
	st := p.Status()
	sig := p.signals()
	shedding := p.admission.Shedding(sig)
	m := p.metrics

	m.NewCounter("mixnn_ingress_updates_total",
		"Participant updates ingested (hop 0).").Set(float64(st.Received))
	m.NewCounter("mixnn_ingress_hops_total",
		"Cascade updates ingested (hop >= 1).").Set(float64(st.HopReceived))
	m.NewCounter("mixnn_forwarded_total",
		"Updates acknowledged downstream.").Set(float64(st.Forwarded))
	m.NewCounter("mixnn_rounds_total",
		"Rounds closed and drained.").Set(float64(st.Rounds))
	m.NewCounter("mixnn_batches_sent_total",
		"Batch POSTs acknowledged downstream.").Set(float64(st.BatchesSent))
	m.NewGauge("mixnn_in_round",
		"Updates received in the open round.").Set(float64(st.InRound))
	m.NewGauge("mixnn_round_size",
		"Configured round size C.").Set(float64(st.RoundSize))
	m.NewGauge("mixnn_topo_version",
		"Routing-plane topology version.").Set(float64(st.TopoVersion))

	m.NewCounter("mixnn_admission_rate_limited_total",
		"Updates refused 429: sender over its token-bucket budget.").Set(float64(st.AdmissionRateLimited))
	m.NewCounter("mixnn_admission_shed_total",
		"Updates refused 429: tier load-shedding.").Set(float64(st.AdmissionShed))
	shedV := 0.0
	if shedding {
		shedV = 1
	}
	m.NewGauge("mixnn_admission_shedding",
		"1 while the admission gate refuses all ingress.").Set(shedV)
	m.NewGauge("mixnn_ingress_queue_depth",
		"Live ingress queue depth feeding this proxy.").Set(float64(sig.QueueDepth))
	m.NewGauge("mixnn_health_score",
		"Advertised health score in (0, 1]; higher is healthier.").Set(health.Score(sig, shedding))

	m.NewGauge("mixnn_outbox_pending",
		"Outbox entries committed but not yet acknowledged downstream.").Set(float64(st.OutboxPending))
	m.NewGauge("mixnn_outbox_quarantined",
		"Outbox entries set aside as undeliverable (.bad files).").Set(float64(st.OutboxQuarantined))
	for _, lane := range st.OutboxLanes {
		dest := lane.Dest
		if dest == "" {
			dest = "downstream"
		}
		l := health.Label{Key: "dest", Value: dest}
		m.NewGauge("mixnn_outbox_lane_pending",
			"Entries queued per delivery lane.", l).Set(float64(lane.Pending))
		m.NewGauge("mixnn_outbox_lane_backoff_ms",
			"Per-lane retry backoff in milliseconds (0 = healthy).", l).Set(lane.BackoffMs)
		m.NewCounter("mixnn_outbox_lane_delivered_total",
			"Entries acknowledged per delivery lane.", l).Set(float64(lane.Delivered))
		m.NewCounter("mixnn_outbox_lane_failures_total",
			"Transient delivery failures per lane.", l).Set(float64(lane.Failures))
	}

	m.NewGauge("mixnn_sessions_active",
		"Live crypto sessions in the enclave cache.").Set(float64(st.SessionsActive))
	m.NewCounter("mixnn_sessions_established_total",
		"Crypto sessions established (full RSA wrap).").Set(float64(st.SessionsEstablished))
	m.NewCounter("mixnn_session_hits_total",
		"Decrypts served from a cached session.").Set(float64(st.SessionHits))
	m.NewCounter("mixnn_session_misses_total",
		"Decrypts that missed the session cache.").Set(float64(st.SessionMisses))
	m.NewCounter("mixnn_session_evictions_total",
		"Sessions evicted under cache pressure.").Set(float64(st.SessionEvictions))
	m.NewCounter("mixnn_session_replays_total",
		"Ciphertexts rejected as counter replays.").Set(float64(st.SessionReplays))

	return m.WritePrometheus(w)
}
