package secagg

import (
	"math/rand"
	"testing"

	"mixnn/internal/core"
)

// BenchmarkSecAggOverhead times masking one update in an n-party session —
// the per-client cost of the cryptographic alternative whose deployment
// friction motivates MixNN (each client pays n-1 ECDH derivations plus a
// full mask stream per peer, every round).
func BenchmarkSecAggOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 16} {
		b.Run(sizeName(n), func(b *testing.B) {
			sess, err := NewSession(n)
			if err != nil {
				b.Fatal(err)
			}
			update := randomUpdates(1, 2000, rng)[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.participants[0].Mask(update, sess.publics); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMixNNOverhead is the apples-to-apples comparison: mixing the
// same updates with MixNN's batch mixer, which costs pointer shuffling
// rather than per-peer cryptography.
func BenchmarkMixNNOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 16} {
		b.Run(sizeName(n), func(b *testing.B) {
			updates := randomUpdates(n, 2000, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.BatchMix(updates, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	if n < 10 {
		return "n=0" + string(rune('0'+n))
	}
	return "n=" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}
