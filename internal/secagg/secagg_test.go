package secagg

import (
	"crypto/ecdh"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mixnn/internal/nn"
	"mixnn/internal/tensor"
)

func randomUpdates(n, size int, rng *rand.Rand) []nn.ParamSet {
	out := make([]nn.ParamSet, n)
	for i := range out {
		out[i] = nn.ParamSet{Layers: []nn.LayerParams{
			{Name: "a", Tensors: []*tensor.Tensor{tensor.New(size).RandN(rng, 0, 1)}},
			{Name: "b", Tensors: []*tensor.Tensor{tensor.New(size, 2).RandN(rng, 0, 1)}},
		}}
	}
	return out
}

func TestMasksCancelInAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	updates := randomUpdates(5, 20, rng)
	sess, err := NewSession(5)
	if err != nil {
		t.Fatal(err)
	}
	masked, err := sess.MaskAll(updates)
	if err != nil {
		t.Fatal(err)
	}
	want, err := nn.Average(updates)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nn.Average(masked)
	if err != nil {
		t.Fatal(err)
	}
	if !want.ApproxEqual(got, 1e-9) {
		t.Fatal("masks did not cancel in the aggregate")
	}
}

func TestIndividualMaskedUpdatesAreHidden(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	updates := randomUpdates(4, 500, rng)
	sess, err := NewSession(4)
	if err != nil {
		t.Fatal(err)
	}
	masked, err := sess.MaskAll(updates)
	if err != nil {
		t.Fatal(err)
	}
	for i := range updates {
		orig := updates[i].Flatten()
		m := masked[i].Flatten()
		// A masked update must be far from the original (each of 3 peer
		// masks contributes variance ~1/3 per scalar)...
		if tensor.EuclideanDistance(orig, m) < 1 {
			t.Fatalf("participant %d: masked update too close to original", i)
		}
		// ...and essentially uncorrelated with it.
		if cos := math.Abs(tensor.CosineSimilarity(orig, m.Subbed(orig))); cos > 0.2 {
			t.Fatalf("participant %d: mask correlates with update (cos=%g)", i, cos)
		}
	}
}

func TestMaskDeterministicPerPair(t *testing.T) {
	var seed [32]byte
	seed[0] = 7
	a := make([]float64, 100)
	b := make([]float64, 100)
	maskStream(seed, a)
	maskStream(seed, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("mask stream is not deterministic")
		}
		if a[i] < -1 || a[i] >= 1 {
			t.Fatalf("mask value %g outside [-1,1)", a[i])
		}
	}
	var seed2 [32]byte
	seed2[0] = 8
	c := make([]float64, 100)
	maskStream(seed2, c)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSessionErrors(t *testing.T) {
	if _, err := NewSession(1); err == nil {
		t.Fatal("session with 1 participant accepted")
	}
	sess, err := NewSession(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if _, err := sess.MaskAll(randomUpdates(2, 4, rng)); err == nil {
		t.Fatal("update-count mismatch accepted")
	}
}

func TestMaskErrors(t *testing.T) {
	p, err := NewParticipant(0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	u := randomUpdates(1, 4, rng)[0]
	if _, err := p.Mask(u, nil); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := p.Mask(u, []*ecdh.PublicKey{nil, nil}); err == nil {
		t.Fatal("nil peer key accepted")
	}
}

// Property: masks cancel for any population size.
func TestQuickMaskCancellation(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%5) + 2
		rng := rand.New(rand.NewSource(seed))
		updates := randomUpdates(n, 8, rng)
		sess, err := NewSession(n)
		if err != nil {
			return false
		}
		masked, err := sess.MaskAll(updates)
		if err != nil {
			return false
		}
		want, err1 := nn.Average(updates)
		got, err2 := nn.Average(masked)
		if err1 != nil || err2 != nil {
			return false
		}
		return want.ApproxEqual(got, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
