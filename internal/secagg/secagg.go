// Package secagg implements pairwise-masking secure aggregation in the
// style of Bonawitz et al. (CCS'17) — the cryptographic alternative the
// paper's introduction compares MixNN against ("secure aggregation relying
// on a cryptographic scheme has been also proposed... the underlying
// cryptographic scheme requires the participation of the server in the
// protection").
//
// Protocol (dropout-free simplification):
//
//  1. Every participant holds an ECDH key pair; pairs (i, j) derive a
//     shared secret via X25519.
//  2. The shared secret seeds a deterministic mask stream m_ij; client i
//     adds +m_ij for every j > i and −m_ij for every j < i to its update.
//  3. Masks cancel pairwise in the sum, so the server learns only the
//     aggregate; each individual masked update is computationally
//     indistinguishable from noise.
//
// The package exists as an experimental comparator: it protects exactly
// the quantity MixNN protects (individual updates), but requires a key
// agreement round among all participants and breaks under dropout unless
// a recovery protocol runs — the deployment frictions the paper argues
// MixNN avoids. BenchmarkSecAggOverhead quantifies the masking cost.
package secagg

import (
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"mixnn/internal/nn"
)

// Participant holds one client's key material for a secure-aggregation
// session.
type Participant struct {
	Index int
	priv  *ecdh.PrivateKey
}

// NewParticipant generates key material for client index.
func NewParticipant(index int) (*Participant, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("secagg: generate key: %w", err)
	}
	return &Participant{Index: index, priv: priv}, nil
}

// PublicKey returns the key shared with the other participants.
func (p *Participant) PublicKey() *ecdh.PublicKey { return p.priv.PublicKey() }

// sharedSeed derives the pairwise mask seed for (p, peer).
func (p *Participant) sharedSeed(peer *ecdh.PublicKey) ([32]byte, error) {
	var seed [32]byte
	secret, err := p.priv.ECDH(peer)
	if err != nil {
		return seed, fmt.Errorf("secagg: ECDH: %w", err)
	}
	seed = sha256.Sum256(secret)
	return seed, nil
}

// maskStream fills out with the deterministic mask derived from seed.
// SHA-256 in counter mode is used as the PRG: block t is
// H(seed || t), consumed 8 bytes at a time as float64 in [-1, 1).
func maskStream(seed [32]byte, out []float64) {
	var block [40]byte
	copy(block[:32], seed[:])
	var digest [32]byte
	di := len(digest) // force refill on first use
	counter := uint64(0)
	for i := range out {
		if di+8 > len(digest) {
			binary.LittleEndian.PutUint64(block[32:], counter)
			digest = sha256.Sum256(block[:])
			counter++
			di = 0
		}
		u := binary.LittleEndian.Uint64(digest[di : di+8])
		di += 8
		// Map the 64-bit word to [-1, 1).
		out[i] = float64(int64(u)) / float64(1<<63)
	}
}

// Mask returns a copy of the update with all pairwise masks applied.
// peers[j] must be participant j's public key, for every j != p.Index;
// entries at p.Index are ignored.
func (p *Participant) Mask(update nn.ParamSet, peers []*ecdh.PublicKey) (nn.ParamSet, error) {
	if p.Index < 0 || p.Index >= len(peers) {
		return nn.ParamSet{}, fmt.Errorf("secagg: participant index %d outside peer list of %d", p.Index, len(peers))
	}
	masked := update.Clone()
	n := masked.NumParams()
	mask := make([]float64, n)
	for j, peer := range peers {
		if j == p.Index {
			continue
		}
		if peer == nil {
			return nn.ParamSet{}, fmt.Errorf("secagg: missing public key for participant %d", j)
		}
		seed, err := p.sharedSeed(peer)
		if err != nil {
			return nn.ParamSet{}, err
		}
		maskStream(seed, mask)
		sign := 1.0
		if j < p.Index {
			sign = -1
		}
		applyMask(masked, mask, sign)
	}
	return masked, nil
}

// applyMask adds sign*mask element-wise across the ParamSet.
func applyMask(ps nn.ParamSet, mask []float64, sign float64) {
	off := 0
	for _, lp := range ps.Layers {
		for _, t := range lp.Tensors {
			d := t.Data()
			for i := range d {
				d[i] += sign * mask[off]
				off++
			}
		}
	}
}

// Session wires a full dropout-free secure-aggregation round for tests and
// benchmarks: key generation, mask application, and verification that the
// server-side mean equals the true mean.
type Session struct {
	participants []*Participant
	publics      []*ecdh.PublicKey
}

// NewSession creates n participants and exchanges their keys.
func NewSession(n int) (*Session, error) {
	if n < 2 {
		return nil, fmt.Errorf("secagg: need at least 2 participants, got %d", n)
	}
	s := &Session{
		participants: make([]*Participant, n),
		publics:      make([]*ecdh.PublicKey, n),
	}
	for i := 0; i < n; i++ {
		p, err := NewParticipant(i)
		if err != nil {
			return nil, err
		}
		s.participants[i] = p
		s.publics[i] = p.PublicKey()
	}
	return s, nil
}

// MaskAll returns the masked updates as the server would receive them.
func (s *Session) MaskAll(updates []nn.ParamSet) ([]nn.ParamSet, error) {
	if len(updates) != len(s.participants) {
		return nil, fmt.Errorf("secagg: %d updates for %d participants", len(updates), len(s.participants))
	}
	out := make([]nn.ParamSet, len(updates))
	for i, u := range updates {
		masked, err := s.participants[i].Mask(u, s.publics)
		if err != nil {
			return nil, fmt.Errorf("secagg: participant %d: %w", i, err)
		}
		out[i] = masked
	}
	return out, nil
}
