package nn

import (
	"fmt"
	"math/rand"

	"mixnn/internal/tensor"
)

// LocallyConnected2D is a convolution-like layer whose filter weights are
// NOT shared across spatial positions — the layer type that distinguishes
// the DeepFace architecture used for the LFW experiments. Weights have
// shape [outC, outH*outW, inC*KH*KW] and bias [outC, outH*outW].
type LocallyConnected2D struct {
	name string
	geom tensor.ConvGeom
	outC int

	w, b   *tensor.Tensor
	wg, bg *tensor.Tensor

	cacheCols []*tensor.Tensor
}

// NewLocallyConnected2D constructs a locally-connected layer with He-normal
// weights.
func NewLocallyConnected2D(name string, geom tensor.ConvGeom, outC int, rng *rand.Rand) *LocallyConnected2D {
	if err := geom.Validate(); err != nil {
		panic(fmt.Sprintf("nn: LocallyConnected2D %q: %v", name, err))
	}
	if outC <= 0 {
		panic(fmt.Sprintf("nn: LocallyConnected2D %q has non-positive output channels", name))
	}
	fanIn := geom.InC * geom.KH * geom.KW
	outHW := geom.OutH() * geom.OutW()
	return &LocallyConnected2D{
		name: name,
		geom: geom,
		outC: outC,
		w:    tensor.New(outC, outHW, fanIn).HeNormal(rng, fanIn),
		b:    tensor.New(outC, outHW),
		wg:   tensor.New(outC, outHW, fanIn),
		bg:   tensor.New(outC, outHW),
	}
}

var _ Layer = (*LocallyConnected2D)(nil)

// Name implements Layer.
func (l *LocallyConnected2D) Name() string { return l.name }

// InDim returns the flat input width.
func (l *LocallyConnected2D) InDim() int { return l.geom.InC * l.geom.InH * l.geom.InW }

// OutDim returns the flat output width.
func (l *LocallyConnected2D) OutDim() int { return l.outC * l.geom.OutH() * l.geom.OutW() }

// Forward implements Layer.
func (l *LocallyConnected2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	inDim := l.InDim()
	if x.Rank() != 2 || x.Dim(1) != inDim {
		panic(fmt.Sprintf("nn: LocallyConnected2D %q expects [N,%d], got %v", l.name, inDim, x.Shape()))
	}
	n := x.Dim(0)
	outHW := l.geom.OutH() * l.geom.OutW()
	fanIn := l.geom.InC * l.geom.KH * l.geom.KW
	y := tensor.New(n, l.OutDim())
	if train {
		l.cacheCols = make([]*tensor.Tensor, n)
	}
	wd, bd := l.w.Data(), l.b.Data()
	for i := 0; i < n; i++ {
		cols := tensor.Im2Col(x.Data()[i*inDim:(i+1)*inDim], l.geom) // [fanIn, outHW]
		if train {
			l.cacheCols[i] = cols
		}
		cd := cols.Data()
		out := y.Data()[i*l.OutDim() : (i+1)*l.OutDim()]
		for oc := 0; oc < l.outC; oc++ {
			for p := 0; p < outHW; p++ {
				wRow := wd[(oc*outHW+p)*fanIn : (oc*outHW+p+1)*fanIn]
				s := bd[oc*outHW+p]
				for r, wv := range wRow {
					s += wv * cd[r*outHW+p]
				}
				out[oc*outHW+p] = s
			}
		}
	}
	return y
}

// Backward implements Layer.
func (l *LocallyConnected2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.cacheCols == nil {
		panic(fmt.Sprintf("nn: LocallyConnected2D %q Backward without training Forward", l.name))
	}
	n := grad.Dim(0)
	if n != len(l.cacheCols) {
		panic(fmt.Sprintf("nn: LocallyConnected2D %q gradient batch %d does not match cached batch %d", l.name, n, len(l.cacheCols)))
	}
	outHW := l.geom.OutH() * l.geom.OutW()
	fanIn := l.geom.InC * l.geom.KH * l.geom.KW
	inDim := l.InDim()
	dx := tensor.New(n, inDim)
	wd, wgd, bgd := l.w.Data(), l.wg.Data(), l.bg.Data()
	for i := 0; i < n; i++ {
		cd := l.cacheCols[i].Data()
		gd := grad.Data()[i*l.OutDim() : (i+1)*l.OutDim()]
		dcols := tensor.New(fanIn, outHW)
		dcd := dcols.Data()
		for oc := 0; oc < l.outC; oc++ {
			for p := 0; p < outHW; p++ {
				g := gd[oc*outHW+p]
				if g == 0 {
					continue
				}
				bgd[oc*outHW+p] += g
				wRow := wd[(oc*outHW+p)*fanIn : (oc*outHW+p+1)*fanIn]
				wgRow := wgd[(oc*outHW+p)*fanIn : (oc*outHW+p+1)*fanIn]
				for r := 0; r < fanIn; r++ {
					wgRow[r] += g * cd[r*outHW+p]
					dcd[r*outHW+p] += g * wRow[r]
				}
			}
		}
		copy(dx.Data()[i*inDim:(i+1)*inDim], tensor.Col2Im(dcols, l.geom))
	}
	return dx
}

// Params implements Layer.
func (l *LocallyConnected2D) Params() []*tensor.Tensor { return []*tensor.Tensor{l.w, l.b} }

// Grads implements Layer.
func (l *LocallyConnected2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{l.wg, l.bg} }
