package nn

import (
	"fmt"
	"math/rand"

	"mixnn/internal/tensor"
)

// Conv2D is a 2-D convolution over CHW inputs, lowered to matrix products
// via im2col. Weights have shape [outC, inC*KH*KW]; bias has shape [outC].
// Batch rows are flat CHW volumes; the output rows are flat
// outC×outH×outW volumes.
type Conv2D struct {
	name string
	geom tensor.ConvGeom
	outC int

	w, b   *tensor.Tensor
	wg, bg *tensor.Tensor

	cacheCols []*tensor.Tensor // per-sample im2col matrices from last training forward
}

// NewConv2D constructs a convolution layer with He-normal weights.
func NewConv2D(name string, geom tensor.ConvGeom, outC int, rng *rand.Rand) *Conv2D {
	if err := geom.Validate(); err != nil {
		panic(fmt.Sprintf("nn: Conv2D %q: %v", name, err))
	}
	if outC <= 0 {
		panic(fmt.Sprintf("nn: Conv2D %q has non-positive output channels", name))
	}
	fanIn := geom.InC * geom.KH * geom.KW
	return &Conv2D{
		name: name,
		geom: geom,
		outC: outC,
		w:    tensor.New(outC, fanIn).HeNormal(rng, fanIn),
		b:    tensor.New(outC),
		wg:   tensor.New(outC, fanIn),
		bg:   tensor.New(outC),
	}
}

var _ Layer = (*Conv2D)(nil)

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Geom returns the convolution geometry.
func (c *Conv2D) Geom() tensor.ConvGeom { return c.geom }

// InDim returns the flat input width (inC*inH*inW).
func (c *Conv2D) InDim() int { return c.geom.InC * c.geom.InH * c.geom.InW }

// OutDim returns the flat output width (outC*outH*outW).
func (c *Conv2D) OutDim() int { return c.outC * c.geom.OutH() * c.geom.OutW() }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	inDim := c.InDim()
	if x.Rank() != 2 || x.Dim(1) != inDim {
		panic(fmt.Sprintf("nn: Conv2D %q expects [N,%d], got %v", c.name, inDim, x.Shape()))
	}
	n := x.Dim(0)
	outHW := c.geom.OutH() * c.geom.OutW()
	y := tensor.New(n, c.OutDim())
	if train {
		c.cacheCols = make([]*tensor.Tensor, n)
	}
	for i := 0; i < n; i++ {
		img := x.Data()[i*inDim : (i+1)*inDim]
		cols := tensor.Im2Col(img, c.geom)
		if train {
			c.cacheCols[i] = cols
		}
		out := tensor.MatMul(c.w, cols) // [outC, outHW]
		od, bd := out.Data(), c.b.Data()
		for oc := 0; oc < c.outC; oc++ {
			row := od[oc*outHW : (oc+1)*outHW]
			for p := range row {
				row[p] += bd[oc]
			}
		}
		copy(y.Data()[i*c.OutDim():(i+1)*c.OutDim()], od)
	}
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.cacheCols == nil {
		panic(fmt.Sprintf("nn: Conv2D %q Backward without training Forward", c.name))
	}
	n := grad.Dim(0)
	if n != len(c.cacheCols) {
		panic(fmt.Sprintf("nn: Conv2D %q gradient batch %d does not match cached batch %d", c.name, n, len(c.cacheCols)))
	}
	outHW := c.geom.OutH() * c.geom.OutW()
	inDim := c.InDim()
	dx := tensor.New(n, inDim)
	bgd := c.bg.Data()
	for i := 0; i < n; i++ {
		dyMat, err := tensor.FromSlice(grad.Data()[i*c.OutDim():(i+1)*c.OutDim()], c.outC, outHW)
		if err != nil {
			panic(err)
		}
		// dW += dy·colsᵀ ; db += row sums of dy ; dcols = Wᵀ·dy.
		c.wg.Add(tensor.MatMulTB(dyMat, c.cacheCols[i]))
		dd := dyMat.Data()
		for oc := 0; oc < c.outC; oc++ {
			s := 0.0
			for _, v := range dd[oc*outHW : (oc+1)*outHW] {
				s += v
			}
			bgd[oc] += s
		}
		dcols := tensor.MatMulTA(c.w, dyMat)
		copy(dx.Data()[i*inDim:(i+1)*inDim], tensor.Col2Im(dcols, c.geom))
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.w, c.b} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.wg, c.bg} }
