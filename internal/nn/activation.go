package nn

import (
	"fmt"
	"math"

	"mixnn/internal/tensor"
)

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	name      string
	cacheMask []bool
}

// NewReLU constructs a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

var _ Layer = (*ReLU)(nil)

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x.Clone()
	if train {
		r.cacheMask = make([]bool, y.Size())
	}
	for i, v := range y.Data() {
		if v > 0 {
			if train {
				r.cacheMask[i] = true
			}
		} else {
			y.Data()[i] = 0
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.cacheMask == nil {
		panic(fmt.Sprintf("nn: ReLU %q Backward without training Forward", r.name))
	}
	if grad.Size() != len(r.cacheMask) {
		panic(fmt.Sprintf("nn: ReLU %q gradient size %d does not match cached %d", r.name, grad.Size(), len(r.cacheMask)))
	}
	dx := grad.Clone()
	for i := range dx.Data() {
		if !r.cacheMask[i] {
			dx.Data()[i] = 0
		}
	}
	return dx
}

// Params implements Layer (stateless).
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (stateless).
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Tanh applies tanh element-wise.
type Tanh struct {
	name     string
	cacheOut *tensor.Tensor
}

// NewTanh constructs a tanh activation layer.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

var _ Layer = (*Tanh)(nil)

// Name implements Layer.
func (t *Tanh) Name() string { return t.name }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x.Clone().Apply(math.Tanh)
	if train {
		t.cacheOut = y
	}
	return y
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if t.cacheOut == nil {
		panic(fmt.Sprintf("nn: Tanh %q Backward without training Forward", t.name))
	}
	dx := grad.Clone()
	od := t.cacheOut.Data()
	for i := range dx.Data() {
		dx.Data()[i] *= 1 - od[i]*od[i]
	}
	return dx
}

// Params implements Layer (stateless).
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (stateless).
func (t *Tanh) Grads() []*tensor.Tensor { return nil }

// Flatten is an identity layer kept for architectural readability when
// porting conv→dense transitions (all batch rows are already flat).
type Flatten struct{ name string }

// NewFlatten constructs a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

var _ Layer = (*Flatten)(nil)

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor { return x }

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor { return grad }

// Params implements Layer (stateless).
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (stateless).
func (f *Flatten) Grads() []*tensor.Tensor { return nil }
