package nn

import (
	"math"
	"math/rand"
	"testing"

	"mixnn/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	logits := tensor.New(5, 7).RandN(rng, 0, 3)
	probs := Softmax(logits)
	for i := 0; i < 5; i++ {
		sum := 0.0
		for j := 0; j < 7; j++ {
			p := probs.At(i, j)
			if p < 0 || p > 1 {
				t.Fatalf("prob out of range: %g", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := tensor.MustFromSlice([]float64{1000, 1000, 999}, 1, 3)
	probs := Softmax(logits)
	for _, v := range probs.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed: %v", probs)
		}
	}
	if probs.At(0, 0) <= probs.At(0, 2) {
		t.Fatal("softmax lost ordering")
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := tensor.MustFromSlice([]float64{1, 2, 3}, 1, 3)
	b := tensor.MustFromSlice([]float64{101, 102, 103}, 1, 3)
	if !tensor.ApproxEqual(Softmax(a), Softmax(b), 1e-12) {
		t.Fatal("softmax is not shift invariant")
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	probs := tensor.MustFromSlice([]float64{0.5, 0.5}, 1, 2)
	got := CrossEntropyLoss(probs, []int{0})
	if math.Abs(got-math.Ln2) > 1e-9 {
		t.Fatalf("loss = %g, want ln(2)", got)
	}
}

func TestCrossEntropyPanicsOnBadLabels(t *testing.T) {
	probs := tensor.MustFromSlice([]float64{1, 0}, 1, 2)
	for name, labels := range map[string][]int{
		"out of range": {5},
		"negative":     {-1},
		"wrong count":  {0, 1},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			CrossEntropyLoss(probs, labels)
		})
	}
}

func TestSoftmaxCrossEntropyGradientSignature(t *testing.T) {
	// For a single sample, grad = probs - onehot; the true-class entry is
	// negative, all others positive, and the row sums to ~0.
	rng := rand.New(rand.NewSource(2))
	logits := tensor.New(1, 4).RandN(rng, 0, 1)
	var loss SoftmaxCrossEntropy
	_, probs := loss.Forward(logits, []int{2})
	grad := loss.Backward(probs, []int{2})
	sum := 0.0
	for j := 0; j < 4; j++ {
		g := grad.At(0, j)
		sum += g
		if j == 2 && g >= 0 {
			t.Fatalf("true-class gradient %g not negative", g)
		}
		if j != 2 && g <= 0 {
			t.Fatalf("off-class gradient %g not positive", g)
		}
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("gradient row sums to %g, want 0", sum)
	}
}

func TestAccuracy(t *testing.T) {
	scores := tensor.MustFromSlice([]float64{
		0.9, 0.1,
		0.3, 0.7,
		0.6, 0.4,
	}, 3, 2)
	if got := Accuracy(scores, []int{0, 1, 1}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %g, want 2/3", got)
	}
	if got := Accuracy(scores, []int{0, 1, 0}); got != 1 {
		t.Fatalf("accuracy = %g, want 1", got)
	}
}
