package nn

import (
	"math"
	"math/rand"
	"testing"

	"mixnn/internal/tensor"
)

// numericalGrad estimates d(loss)/d(theta) for every scalar in the given
// parameter tensors by central finite differences, where loss is the
// network's softmax cross-entropy on a fixed batch.
func numericalGrad(net *Network, x *tensor.Tensor, labels []int, params []*tensor.Tensor) []*tensor.Tensor {
	const h = 1e-5
	grads := make([]*tensor.Tensor, len(params))
	for pi, p := range params {
		g := tensor.New(p.Shape()...)
		pd := p.Data()
		for i := range pd {
			orig := pd[i]
			pd[i] = orig + h
			lp := net.Loss(x, labels)
			pd[i] = orig - h
			lm := net.Loss(x, labels)
			pd[i] = orig
			g.Data()[i] = (lp - lm) / (2 * h)
		}
		grads[pi] = g
	}
	return grads
}

// analyticGrad runs one forward/backward pass and returns copies of the
// accumulated gradients for the given parameter tensors.
func analyticGrad(net *Network, x *tensor.Tensor, labels []int) []*tensor.Tensor {
	net.ZeroGrads()
	logits := net.Forward(x, true)
	var loss SoftmaxCrossEntropy
	_, probs := loss.Forward(logits, labels)
	net.Backward(loss.Backward(probs, labels))
	var out []*tensor.Tensor
	for _, l := range net.Layers() {
		for _, g := range l.Grads() {
			out = append(out, g.Clone())
		}
	}
	return out
}

func checkGrads(t *testing.T, net *Network, x *tensor.Tensor, labels []int) {
	t.Helper()
	var params []*tensor.Tensor
	for _, l := range net.Layers() {
		params = append(params, l.Params()...)
	}
	analytic := analyticGrad(net, x, labels)
	numeric := numericalGrad(net, x, labels, params)
	if len(analytic) != len(numeric) {
		t.Fatalf("gradient count mismatch: %d analytic vs %d numeric", len(analytic), len(numeric))
	}
	for i := range analytic {
		ad, nd := analytic[i].Data(), numeric[i].Data()
		for j := range ad {
			diff := math.Abs(ad[j] - nd[j])
			scale := math.Max(1e-4, math.Abs(ad[j])+math.Abs(nd[j]))
			if diff/scale > 1e-4 {
				t.Fatalf("param %d scalar %d: analytic %g vs numeric %g (rel %g)",
					i, j, ad[j], nd[j], diff/scale)
			}
		}
	}
}

func TestGradCheckDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(NewDense("fc1", 6, 5, rng), NewDense("fc2", 5, 3, rng))
	x := tensor.New(4, 6).RandN(rng, 0, 1)
	checkGrads(t, net, x, []int{0, 2, 1, 2})
}

func TestGradCheckDenseReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(
		NewDense("fc1", 5, 8, rng), NewReLU("relu1"),
		NewDense("fc2", 8, 3, rng),
	)
	x := tensor.New(3, 5).RandN(rng, 0, 1)
	checkGrads(t, net, x, []int{1, 0, 2})
}

func TestGradCheckDenseTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(
		NewDense("fc1", 4, 6, rng), NewTanh("tanh1"),
		NewDense("fc2", 6, 2, rng),
	)
	x := tensor.New(3, 4).RandN(rng, 0, 1)
	checkGrads(t, net, x, []int{0, 1, 1})
}

func TestGradCheckConv(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	geom := tensor.ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2D("conv1", geom, 3, rng)
	net := NewNetwork(conv, NewDense("fc1", conv.OutDim(), 2, rng))
	x := tensor.New(2, geom.InC*geom.InH*geom.InW).RandN(rng, 0, 1)
	checkGrads(t, net, x, []int{0, 1})
}

func TestGradCheckConvStridePad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	geom := tensor.ConvGeom{InC: 1, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 2, Pad: 1}
	conv := NewConv2D("conv1", geom, 2, rng)
	net := NewNetwork(conv, NewReLU("relu1"), NewDense("fc1", conv.OutDim(), 3, rng))
	x := tensor.New(2, 36).RandN(rng, 0, 1)
	checkGrads(t, net, x, []int{2, 0})
}

func TestGradCheckMaxPool(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	geom := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := NewConv2D("conv1", geom, 2, rng)
	pool := NewMaxPool2D("pool1", 2, 4, 4, 2)
	net := NewNetwork(conv, pool, NewDense("fc1", pool.OutDim(), 2, rng))
	x := tensor.New(3, 16).RandN(rng, 0, 1)
	checkGrads(t, net, x, []int{0, 1, 1})
}

func TestGradCheckRectPool(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := NewMaxPool2DRect("pool1", 1, 6, 8, 1, 2)
	net := NewNetwork(pool, NewDense("fc1", pool.OutDim(), 2, rng))
	x := tensor.New(2, 48).RandN(rng, 0, 1)
	checkGrads(t, net, x, []int{1, 0})
}

func TestGradCheckLocallyConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	geom := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 0}
	local := NewLocallyConnected2D("local1", geom, 2, rng)
	net := NewNetwork(local, NewDense("fc1", local.OutDim(), 2, rng))
	x := tensor.New(2, 32).RandN(rng, 0, 1)
	checkGrads(t, net, x, []int{1, 0})
}

func TestGradCheckDeepFaceStack(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	arch := NewDeepFace("deepface-test", DeepFaceConfig{
		InC: 1, InH: 8, InW: 8, Classes: 2,
		Filters1: 2, Filters2: 2, Local3: 2, Hidden: 6,
	})
	net := arch.Build(rng)
	x := tensor.New(2, 64).RandN(rng, 0, 1)
	checkGrads(t, net, x, []int{0, 1})
}

func TestGradCheckConvNetStack(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	arch := NewConvNet("convnet-test", ConvNetConfig{
		InC: 1, InH: 8, InW: 8, Classes: 3,
		Filters1: 2, Filters2: 2, Hidden1: 8, Hidden2: 6,
		PoolH1: 2, PoolW1: 2, PoolH2: 2, PoolW2: 2,
	})
	net := arch.Build(rng)
	x := tensor.New(2, 64).RandN(rng, 0, 1)
	checkGrads(t, net, x, []int{1, 2})
}
