package nn

import (
	"math"
	"math/rand"
	"testing"

	"mixnn/internal/tensor"
)

func TestReLUForwardValues(t *testing.T) {
	r := NewReLU("r")
	x := tensor.MustFromSlice([]float64{-2, -0.5, 0, 0.5, 2}, 1, 5)
	y := r.Forward(x, false)
	want := tensor.MustFromSlice([]float64{0, 0, 0, 0.5, 2}, 1, 5)
	if !tensor.Equal(y, want) {
		t.Fatalf("ReLU = %v, want %v", y, want)
	}
	// Input must not be mutated.
	if x.Data()[0] != -2 {
		t.Fatal("ReLU mutated its input")
	}
}

func TestReLUBackwardMasks(t *testing.T) {
	r := NewReLU("r")
	x := tensor.MustFromSlice([]float64{-1, 1, -0.1, 0.1}, 1, 4)
	r.Forward(x, true)
	grad := tensor.MustFromSlice([]float64{10, 10, 10, 10}, 1, 4)
	dx := r.Backward(grad)
	want := tensor.MustFromSlice([]float64{0, 10, 0, 10}, 1, 4)
	if !tensor.Equal(dx, want) {
		t.Fatalf("ReLU backward = %v, want %v", dx, want)
	}
}

func TestTanhForwardValues(t *testing.T) {
	th := NewTanh("t")
	x := tensor.MustFromSlice([]float64{0, 1, -1}, 1, 3)
	y := th.Forward(x, false)
	if math.Abs(y.At(0, 0)) > 1e-15 {
		t.Fatalf("tanh(0) = %g", y.At(0, 0))
	}
	if math.Abs(y.At(0, 1)-math.Tanh(1)) > 1e-15 {
		t.Fatalf("tanh(1) = %g", y.At(0, 1))
	}
	if math.Abs(y.At(0, 2)+y.At(0, 1)) > 1e-15 {
		t.Fatal("tanh not odd")
	}
}

func TestBackwardWithoutForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	grad := tensor.New(1, 4)
	layers := map[string]Layer{
		"relu":  NewReLU("r"),
		"tanh":  NewTanh("t"),
		"dense": NewDense("d", 4, 4, rng),
		"pool":  NewMaxPool2D("p", 1, 2, 2, 2),
		"conv":  NewConv2D("c", tensor.ConvGeom{InC: 1, InH: 2, InW: 2, KH: 1, KW: 1, Stride: 1}, 1, rng),
		"local": NewLocallyConnected2D("l", tensor.ConvGeom{InC: 1, InH: 2, InW: 2, KH: 1, KW: 1, Stride: 1}, 1, rng),
	}
	for name, l := range layers {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("Backward without training Forward did not panic")
				}
			}()
			l.Backward(grad)
		})
	}
}

func TestMaxPoolKnownValues(t *testing.T) {
	p := NewMaxPool2D("p", 1, 4, 4, 2)
	x := tensor.MustFromSlice([]float64{
		1, 2, 9, 4,
		5, 6, 7, 8,
		3, 1, 0, 2,
		4, 8, 1, 5,
	}, 1, 16)
	y := p.Forward(x, true)
	want := tensor.MustFromSlice([]float64{6, 9, 8, 5}, 1, 4)
	if !tensor.Equal(y, want) {
		t.Fatalf("MaxPool = %v, want %v", y, want)
	}
	// Backward routes gradient only to the argmax positions.
	dx := p.Backward(tensor.MustFromSlice([]float64{1, 1, 1, 1}, 1, 4))
	if got := dx.Data()[5]; got != 1 { // position of the 6
		t.Fatalf("grad at argmax = %g, want 1", got)
	}
	if got := dx.Data()[0]; got != 0 {
		t.Fatalf("grad at non-max = %g, want 0", got)
	}
	sum := 0.0
	for _, v := range dx.Data() {
		sum += v
	}
	if sum != 4 {
		t.Fatalf("gradient mass = %g, want 4", sum)
	}
}

func TestMaxPoolRejectsIndivisible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible pooling accepted")
		}
	}()
	NewMaxPool2D("p", 1, 5, 4, 2)
}

func TestFlattenIsIdentity(t *testing.T) {
	f := NewFlatten("f")
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(3, 7).RandN(rng, 0, 1)
	if f.Forward(x, true) != x {
		t.Fatal("Flatten Forward is not identity")
	}
	if f.Backward(x) != x {
		t.Fatal("Flatten Backward is not identity")
	}
	if f.Params() != nil || f.Grads() != nil {
		t.Fatal("Flatten has parameters")
	}
}

func TestLocallyConnectedDiffersFromConv(t *testing.T) {
	// With spatially-varying weights, a locally-connected layer must be
	// able to produce different outputs at positions where a conv layer
	// (shared weights) would produce identical ones.
	rng := rand.New(rand.NewSource(3))
	geom := tensor.ConvGeom{InC: 1, InH: 2, InW: 2, KH: 1, KW: 1, Stride: 1, Pad: 0}
	local := NewLocallyConnected2D("l", geom, 1, rng)

	// Constant input: a conv would output the same value at all 4
	// positions; the locally-connected layer should not (random init makes
	// equal weights across positions measure-zero).
	x := tensor.Ones(1, 4)
	y := local.Forward(x, false)
	allEqual := true
	for i := 1; i < 4; i++ {
		if y.Data()[i] != y.Data()[0] {
			allEqual = false
		}
	}
	if allEqual {
		t.Fatal("locally-connected layer behaves like a shared-weight conv")
	}

	conv := NewConv2D("c", geom, 1, rng)
	yc := conv.Forward(x, false)
	for i := 1; i < 4; i++ {
		if yc.Data()[i] != yc.Data()[0] {
			t.Fatal("1x1 conv on constant input is not constant")
		}
	}
}

func TestDenseKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDense("d", 2, 2, rng)
	// Overwrite weights with known values: y = x·W + b.
	copy(d.Params()[0].Data(), []float64{1, 2, 3, 4}) // W
	copy(d.Params()[1].Data(), []float64{10, 20})     // b
	x := tensor.MustFromSlice([]float64{1, 1}, 1, 2)
	y := d.Forward(x, false)
	want := tensor.MustFromSlice([]float64{1*1 + 1*3 + 10, 1*2 + 1*4 + 20}, 1, 2)
	if !tensor.ApproxEqual(y, want, 1e-12) {
		t.Fatalf("Dense = %v, want %v", y, want)
	}
}

func TestLayerShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tests := []struct {
		name string
		fn   func()
	}{
		{"dense wrong width", func() { NewDense("d", 3, 2, rng).Forward(tensor.New(1, 4), false) }},
		{"conv wrong width", func() {
			NewConv2D("c", tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}, 2, rng).
				Forward(tensor.New(1, 9), false)
		}},
		{"pool wrong width", func() { NewMaxPool2D("p", 1, 4, 4, 2).Forward(tensor.New(1, 9), false) }},
		{"dense zero dims", func() { NewDense("d", 0, 2, rng) }},
		{"conv zero outc", func() {
			NewConv2D("c", tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1}, 0, rng)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tt.fn()
		})
	}
}

func TestConvDims(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	geom := tensor.ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	c := NewConv2D("c", geom, 5, rng)
	if c.InDim() != 3*8*8 {
		t.Fatalf("InDim = %d", c.InDim())
	}
	if c.OutDim() != 5*8*8 {
		t.Fatalf("OutDim = %d", c.OutDim())
	}
	if c.Geom() != geom {
		t.Fatalf("Geom = %+v", c.Geom())
	}
	l := NewLocallyConnected2D("l", geom, 2, rng)
	if l.InDim() != 3*8*8 || l.OutDim() != 2*8*8 {
		t.Fatalf("local dims = %d/%d", l.InDim(), l.OutDim())
	}
}
