package nn

import (
	"fmt"
	"math/rand"

	"mixnn/internal/tensor"
)

// Dropout randomly zeroes activations during training with probability p
// and scales the survivors by 1/(1-p) (inverted dropout), so evaluation is
// the identity. The paper's related work discusses overfitting-reduction
// defences that trade utility for privacy; Dropout lets experiments
// reproduce that style of mitigation.
type Dropout struct {
	name string
	p    float64
	rng  *rand.Rand

	cacheMask []bool
}

// NewDropout constructs a dropout layer with drop probability p in [0, 1).
func NewDropout(name string, p float64, rng *rand.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: Dropout %q probability %g outside [0,1)", name, p))
	}
	if rng == nil {
		panic(fmt.Sprintf("nn: Dropout %q requires a rand source", name))
	}
	return &Dropout{name: name, p: p, rng: rng}
}

var _ Layer = (*Dropout)(nil)

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Forward implements Layer. In evaluation mode it is the identity.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.p == 0 {
		if train {
			d.cacheMask = nil // mark "all kept" for Backward
		}
		return x
	}
	y := x.Clone()
	d.cacheMask = make([]bool, y.Size())
	scale := 1 / (1 - d.p)
	yd := y.Data()
	for i := range yd {
		if d.rng.Float64() < d.p {
			yd[i] = 0
		} else {
			d.cacheMask[i] = true
			yd[i] *= scale
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.cacheMask == nil {
		// p == 0 or eval-style forward during training: identity.
		return grad
	}
	if grad.Size() != len(d.cacheMask) {
		panic(fmt.Sprintf("nn: Dropout %q gradient size %d does not match cached %d", d.name, grad.Size(), len(d.cacheMask)))
	}
	dx := grad.Clone()
	scale := 1 / (1 - d.p)
	dd := dx.Data()
	for i := range dd {
		if d.cacheMask[i] {
			dd[i] *= scale
		} else {
			dd[i] = 0
		}
	}
	return dx
}

// Params implements Layer (stateless).
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (stateless).
func (d *Dropout) Grads() []*tensor.Tensor { return nil }
