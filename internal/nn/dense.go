package nn

import (
	"fmt"
	"math/rand"

	"mixnn/internal/tensor"
)

// Dense is a fully-connected layer: y = x·W + b with W of shape [in, out].
type Dense struct {
	name string
	in   int
	out  int

	w, b   *tensor.Tensor
	wg, bg *tensor.Tensor

	cacheX *tensor.Tensor // input from the last training forward
}

// NewDense constructs a fully-connected layer with Glorot-uniform weights.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: Dense %q has non-positive dims %dx%d", name, in, out))
	}
	return &Dense{
		name: name,
		in:   in,
		out:  out,
		w:    tensor.New(in, out).GlorotUniform(rng, in, out),
		b:    tensor.New(out),
		wg:   tensor.New(in, out),
		bg:   tensor.New(out),
	}
}

var _ Layer = (*Dense)(nil)

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// InDim returns the input width.
func (d *Dense) InDim() int { return d.in }

// OutDim returns the output width.
func (d *Dense) OutDim() int { return d.out }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.in {
		panic(fmt.Sprintf("nn: Dense %q expects [N,%d], got %v", d.name, d.in, x.Shape()))
	}
	if train {
		d.cacheX = x
	}
	y := tensor.MatMul(x, d.w)
	// Broadcast-add the bias to every row.
	n := y.Dim(0)
	yd, bd := y.Data(), d.b.Data()
	for i := 0; i < n; i++ {
		row := yd[i*d.out : (i+1)*d.out]
		for j, bv := range bd {
			row[j] += bv
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.cacheX == nil {
		panic(fmt.Sprintf("nn: Dense %q Backward without training Forward", d.name))
	}
	// dW += xᵀ·dy ; db += column sums of dy ; dx = dy·Wᵀ.
	d.wg.Add(tensor.MatMulTA(d.cacheX, grad))
	n := grad.Dim(0)
	gd, bgd := grad.Data(), d.bg.Data()
	for i := 0; i < n; i++ {
		row := gd[i*d.out : (i+1)*d.out]
		for j, gv := range row {
			bgd[j] += gv
		}
	}
	return tensor.MatMulTB(grad, d.w)
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.w, d.b} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.wg, d.bg} }
