package nn

import (
	"math"
	"math/rand"
	"testing"

	"mixnn/internal/tensor"
)

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout("drop", 0.5, rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(4, 10).RandN(rng, 0, 1)
	y := d.Forward(x, false)
	if !tensor.Equal(x, y) {
		t.Fatal("eval-mode dropout altered its input")
	}
}

func TestDropoutTrainStatistics(t *testing.T) {
	const p = 0.3
	d := NewDropout("drop", p, rand.New(rand.NewSource(3)))
	x := tensor.Ones(1, 20000)
	y := d.Forward(x, true)

	dropped, sum := 0, 0.0
	for _, v := range y.Data() {
		if v == 0 {
			dropped++
		}
		sum += v
	}
	rate := float64(dropped) / float64(y.Size())
	if math.Abs(rate-p) > 0.02 {
		t.Fatalf("drop rate = %g, want ~%g", rate, p)
	}
	// Inverted scaling keeps the expectation: mean should stay ~1.
	if mean := sum / float64(y.Size()); math.Abs(mean-1) > 0.02 {
		t.Fatalf("mean after dropout = %g, want ~1", mean)
	}
	// Survivors are scaled by exactly 1/(1-p).
	for _, v := range y.Data() {
		if v != 0 && math.Abs(v-1/(1-p)) > 1e-12 {
			t.Fatalf("survivor scaled to %g, want %g", v, 1/(1-p))
		}
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	const p = 0.5
	d := NewDropout("drop", p, rand.New(rand.NewSource(4)))
	x := tensor.Ones(1, 100)
	y := d.Forward(x, true)
	grad := tensor.Ones(1, 100)
	dx := d.Backward(grad)
	for i, v := range y.Data() {
		if v == 0 && dx.Data()[i] != 0 {
			t.Fatalf("gradient flows through dropped unit %d", i)
		}
		if v != 0 && math.Abs(dx.Data()[i]-1/(1-p)) > 1e-12 {
			t.Fatalf("kept unit %d gradient %g, want %g", i, dx.Data()[i], 1/(1-p))
		}
	}
}

func TestDropoutZeroProbability(t *testing.T) {
	d := NewDropout("drop", 0, rand.New(rand.NewSource(5)))
	x := tensor.Ones(2, 5)
	if !tensor.Equal(d.Forward(x, true), x) {
		t.Fatal("p=0 dropout altered input")
	}
	g := tensor.Ones(2, 5)
	if !tensor.Equal(d.Backward(g), g) {
		t.Fatal("p=0 dropout altered gradient")
	}
}

func TestDropoutConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"p=1":     func() { NewDropout("d", 1, rand.New(rand.NewSource(1))) },
		"p<0":     func() { NewDropout("d", -0.1, rand.New(rand.NewSource(1))) },
		"nil rng": func() { NewDropout("d", 0.5, nil) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		})
	}
}

func TestDropoutInNetworkStillLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork(
		NewDense("fc1", 2, 16, rng), NewReLU("relu1"),
		NewDropout("drop", 0.2, rand.New(rand.NewSource(7))),
		NewDense("fc2", 16, 2, rng),
	)
	x, y := xorBatch()
	opt := NewAdam(0.05)
	for i := 0; i < 400; i++ {
		net.TrainBatch(x, y, opt)
	}
	if acc := net.Evaluate(x, y); acc != 1 {
		t.Fatalf("XOR accuracy with dropout = %g, want 1", acc)
	}
}
