package nn

import (
	"math/rand"
	"testing"

	"mixnn/internal/tensor"
)

func cifarNet(b *testing.B) (*Network, *tensor.Tensor, []int) {
	b.Helper()
	arch := NewConvNet("bench", ConvNetConfig{
		InC: 3, InH: 32, InW: 32, Classes: 10,
		PoolH1: 2, PoolW1: 2, PoolH2: 2, PoolW2: 2,
	})
	net := arch.New(1)
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(16, 3*32*32).RandN(rng, 0, 1)
	y := make([]int, 16)
	for i := range y {
		y[i] = rng.Intn(10)
	}
	return net, x, y
}

func BenchmarkConvNetForward(b *testing.B) {
	net, x, _ := cifarNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkConvNetTrainBatch(b *testing.B) {
	net, x, y := cifarNet(b)
	opt := NewAdam(0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainBatch(x, y, opt)
	}
}

func BenchmarkParamSetCodec(b *testing.B) {
	net, _, _ := cifarNet(b)
	ps := net.SnapshotParams()
	raw, err := EncodeParamSet(ps)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if _, err := EncodeParamSet(ps); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if _, err := DecodeParamSet(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The §6.5 store-stage fast path: tensors alias the input buffer
	// where alignment allows instead of being converted element-wise.
	b.Run("decode-nocopy", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if _, err := DecodeParamSetNoCopy(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAverage(b *testing.B) {
	net, _, _ := cifarNet(b)
	updates := make([]ParamSet, 20)
	for i := range updates {
		updates[i] = net.SnapshotParams()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Average(updates); err != nil {
			b.Fatal(err)
		}
	}
}
