package nn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mixnn/internal/tensor"
)

// randomParamSet builds a ParamSet with the given layer sizes for tests.
func randomParamSet(rng *rand.Rand, layerSizes ...int) ParamSet {
	var ps ParamSet
	for i, sz := range layerSizes {
		ps.Layers = append(ps.Layers, LayerParams{
			Name: "layer" + string(rune('a'+i)),
			Tensors: []*tensor.Tensor{
				tensor.New(sz).RandN(rng, 0, 1),
				tensor.New(sz, 2).RandN(rng, 0, 1),
			},
		})
	}
	return ps
}

func TestParamSetCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomParamSet(rng, 3, 4)
	b := a.Clone()
	b.Layers[0].Tensors[0].Data()[0] = 1e9
	if a.Layers[0].Tensors[0].Data()[0] == 1e9 {
		t.Fatal("Clone shares tensor storage")
	}
}

func TestParamSetArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomParamSet(rng, 3)
	b := randomParamSet(rng, 3)
	b.Layers[0].Name = a.Layers[0].Name

	sum := a.Clone().Add(b)
	diff := sum.Clone().Sub(b)
	if !diff.ApproxEqual(a, 1e-12) {
		t.Fatal("(a+b)-b != a")
	}

	scaled := a.Clone().Scale(2)
	doubled := a.Clone().Add(a)
	if !scaled.ApproxEqual(doubled, 1e-12) {
		t.Fatal("2*a != a+a")
	}

	axpy := a.Clone().AddScaled(b, -1)
	manual := a.Clone().Sub(b)
	if !axpy.ApproxEqual(manual, 1e-12) {
		t.Fatal("AddScaled(b,-1) != Sub(b)")
	}
}

func TestParamSetCompatible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomParamSet(rng, 3, 4)

	b := a.Clone()
	if !a.Compatible(b) {
		t.Fatal("clone not compatible")
	}

	c := a.Clone()
	c.Layers[0].Name = "renamed"
	if a.Compatible(c) {
		t.Fatal("different names reported compatible")
	}

	d := a.Clone()
	d.Layers = d.Layers[:1]
	if a.Compatible(d) {
		t.Fatal("different layer counts reported compatible")
	}

	e := a.Clone()
	e.Layers[1].Tensors[0] = tensor.New(99)
	if a.Compatible(e) {
		t.Fatal("different shapes reported compatible")
	}
}

func TestParamSetArithmeticPanicsOnIncompatible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomParamSet(rng, 3)
	b := randomParamSet(rng, 4)
	for name, fn := range map[string]func(){
		"Add":       func() { a.Clone().Add(b) },
		"Sub":       func() { a.Clone().Sub(b) },
		"AddScaled": func() { a.Clone().AddScaled(b, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on incompatible ParamSets")
				}
			}()
			fn()
		})
	}
}

func TestParamSetFlatten(t *testing.T) {
	a := ParamSet{Layers: []LayerParams{
		{Name: "l1", Tensors: []*tensor.Tensor{tensor.MustFromSlice([]float64{1, 2}, 2)}},
		{Name: "l2", Tensors: []*tensor.Tensor{tensor.MustFromSlice([]float64{3}, 1), tensor.MustFromSlice([]float64{4, 5}, 2)}},
	}}
	flat := a.Flatten()
	want := tensor.MustFromSlice([]float64{1, 2, 3, 4, 5}, 5)
	if !tensor.Equal(flat, want) {
		t.Fatalf("Flatten = %v, want %v", flat, want)
	}
	l2 := a.FlattenLayer(1)
	wantL2 := tensor.MustFromSlice([]float64{3, 4, 5}, 3)
	if !tensor.Equal(l2, wantL2) {
		t.Fatalf("FlattenLayer(1) = %v, want %v", l2, wantL2)
	}
	if a.NumParams() != 5 || a.NumLayers() != 2 {
		t.Fatalf("NumParams/NumLayers = %d/%d, want 5/2", a.NumParams(), a.NumLayers())
	}
}

func TestAverage(t *testing.T) {
	a := ParamSet{Layers: []LayerParams{{Name: "l", Tensors: []*tensor.Tensor{tensor.MustFromSlice([]float64{1, 2}, 2)}}}}
	b := ParamSet{Layers: []LayerParams{{Name: "l", Tensors: []*tensor.Tensor{tensor.MustFromSlice([]float64{3, 6}, 2)}}}}
	avg, err := Average([]ParamSet{a, b})
	if err != nil {
		t.Fatalf("Average: %v", err)
	}
	want := ParamSet{Layers: []LayerParams{{Name: "l", Tensors: []*tensor.Tensor{tensor.MustFromSlice([]float64{2, 4}, 2)}}}}
	if !avg.ApproxEqual(want, 1e-12) {
		t.Fatalf("Average = %+v", avg)
	}
	if !a.ApproxEqual(ParamSet{Layers: []LayerParams{{Name: "l", Tensors: []*tensor.Tensor{tensor.MustFromSlice([]float64{1, 2}, 2)}}}}, 0) {
		t.Fatal("Average mutated its input")
	}
}

func TestAverageErrors(t *testing.T) {
	if _, err := Average(nil); err == nil {
		t.Fatal("Average(nil) did not error")
	}
	rng := rand.New(rand.NewSource(5))
	a := randomParamSet(rng, 2)
	b := randomParamSet(rng, 3)
	if _, err := Average([]ParamSet{a, b}); err == nil {
		t.Fatal("Average of incompatible sets did not error")
	}
}

// Property: Average is permutation-invariant — the heart of why MixNN
// preserves utility.
func TestQuickAveragePermutationInvariant(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8%7) + 2
		rng := rand.New(rand.NewSource(seed))
		sets := make([]ParamSet, n)
		base := randomParamSet(rng, 3, 2)
		for i := range sets {
			s := base.Clone()
			for _, lp := range s.Layers {
				for _, tt := range lp.Tensors {
					tt.RandN(rng, 0, 1)
				}
			}
			sets[i] = s
		}
		perm := rng.Perm(n)
		shuffled := make([]ParamSet, n)
		for i, p := range perm {
			shuffled[i] = sets[p]
		}
		a1, err1 := Average(sets)
		a2, err2 := Average(shuffled)
		if err1 != nil || err2 != nil {
			return false
		}
		return a1.ApproxEqual(a2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
