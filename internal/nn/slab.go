package nn

import (
	"bytes"
	"fmt"
	"math"
	"unsafe"

	"mixnn/internal/tensor"
)

// SlabLayout maps one model structure onto a contiguous float64 row: every
// tensor of every layer gets a fixed scalar offset, so a whole update is
// one stride-length slice of a slab and a round of updates is one flat
// allocation instead of thousands of ParamSet/LayerParams/Tensor boxes.
// The layout also precomputes the update's exact wire image — the MXPS
// header bytes with the float payloads zeroed (the "skeleton") — which
// turns both directions of the hot path into bulk byte moves:
//
//   - DecodeIntoSlab validates an incoming wire update by comparing its
//     header segments against the skeleton (structure check by memcmp,
//     no structural walk, no allocation) and copies the payloads straight
//     into the row.
//   - AppendWire re-emits a row as wire bytes by interleaving skeleton
//     header segments with the row's payloads into a caller-reused buffer.
//
// A layout is immutable once built and safe for concurrent use.
type SlabLayout struct {
	stride   int    // scalars per update (= row length)
	wireSize int    // exact encoded size of one update
	skeleton []byte // full wire image, float payloads zeroed
	segs     []slabSeg

	// Structural metadata for materialising ParamSet views over rows.
	// shapes is aliased (not copied) into every view's tensors, which is
	// what makes a view cost zero shape allocations; views are read-only
	// by the mixer contract, so the sharing is safe.
	names  []string
	shapes [][][]int // per layer, per tensor
	offs   [][]int   // per layer, per tensor: scalar offset in the row
	sizes  [][]int   // per layer, per tensor: scalar count
	numT   int       // total tensors per update
}

// slabSeg is one alternation of the wire image: hdrLen header bytes at
// wireOff (verified against / copied from the skeleton) followed by n
// float64 payload scalars that live at row[off:off+n].
type slabSeg struct {
	wireOff int
	hdrLen  int
	off     int
	n       int
}

// NewSlabLayout derives the slab layout of ps's model structure. The
// parameter VALUES of ps are irrelevant (the skeleton's payloads are
// zeroed); only names and shapes matter.
func NewSlabLayout(ps ParamSet) (*SlabLayout, error) {
	if len(ps.Layers) == 0 {
		return nil, fmt.Errorf("nn: slab layout of empty param set")
	}
	skel, err := AppendParamSet(nil, ps)
	if err != nil {
		return nil, fmt.Errorf("nn: slab layout: %w", err)
	}
	l := &SlabLayout{
		wireSize: len(skel),
		skeleton: skel,
		names:    make([]string, len(ps.Layers)),
		shapes:   make([][][]int, len(ps.Layers)),
		offs:     make([][]int, len(ps.Layers)),
		sizes:    make([][]int, len(ps.Layers)),
	}
	pos := 4 + 1 + 4 // magic, version, layer count
	hdrStart := 0
	for li, lp := range ps.Layers {
		l.names[li] = lp.Name
		l.shapes[li] = make([][]int, len(lp.Tensors))
		l.offs[li] = make([]int, len(lp.Tensors))
		l.sizes[li] = make([]int, len(lp.Tensors))
		pos += 2 + len(lp.Name) + 4
		for ti, t := range lp.Tensors {
			shape := t.Shape()
			size := t.Size()
			l.shapes[li][ti] = shape
			l.offs[li][ti] = l.stride
			l.sizes[li][ti] = size
			pos += 1 + 4*len(shape)
			l.segs = append(l.segs, slabSeg{wireOff: hdrStart, hdrLen: pos - hdrStart, off: l.stride, n: size})
			// Zero the template's payload out of the skeleton: only header
			// bytes are meaningful, and the skeleton may outlive the
			// template in pools and error messages.
			for i := pos; i < pos+8*size; i++ {
				skel[i] = 0
			}
			pos += 8 * size
			hdrStart = pos
			l.stride += size
			l.numT++
		}
	}
	if pos > hdrStart {
		// Trailing header bytes after the last payload (a layer with zero
		// tensors at the end) still need verification.
		l.segs = append(l.segs, slabSeg{wireOff: hdrStart, hdrLen: pos - hdrStart})
	}
	if pos != len(skel) {
		return nil, fmt.Errorf("nn: slab layout walk covered %d of %d wire bytes", pos, len(skel))
	}
	return l, nil
}

// SlabLayoutFromWire derives the layout from one encoded update — the
// first update of a round teaches the mixer its structure. The input is
// fully validated (it goes through the untrusted-input decoder).
func SlabLayoutFromWire(data []byte) (*SlabLayout, error) {
	ps, err := DecodeParamSetNoCopy(data)
	if err != nil {
		return nil, err
	}
	return NewSlabLayout(ps)
}

// Stride returns the scalars per update (the row length).
func (l *SlabLayout) Stride() int { return l.stride }

// WireSize returns the exact encoded size of one update.
func (l *SlabLayout) WireSize() int { return l.wireSize }

// Skeleton returns the layout's zero-payload wire image. Two layouts
// describe the same model structure iff their skeletons are equal, which
// is how the slab pool matches recycled chunks to mixers. Callers must
// not mutate it.
func (l *SlabLayout) Skeleton() []byte { return l.skeleton }

// Matches reports whether ps has exactly this layout's structure (same
// layer names, tensor order and shapes).
func (l *SlabLayout) Matches(ps ParamSet) bool {
	if len(ps.Layers) != len(l.names) {
		return false
	}
	for li, lp := range ps.Layers {
		if lp.Name != l.names[li] || len(lp.Tensors) != len(l.shapes[li]) {
			return false
		}
		for ti, t := range lp.Tensors {
			want := l.shapes[li][ti]
			if t.Rank() != len(want) {
				return false
			}
			for d, dim := range want {
				if t.Dim(d) != dim {
					return false
				}
			}
		}
	}
	return true
}

// DecodeIntoSlab parses one encoded update directly into row (which must
// be Stride() long): header segments are verified byte-for-byte against
// the skeleton — a strict structural equality check, stricter than the
// general decoder in that it also pins names, order and shapes — and the
// float payloads are bulk-copied into the row. It allocates nothing. On
// a big-endian host the payload copy falls back to per-element
// conversion; misaligned input costs nothing extra, because the
// destination row (not the wire buffer) is the aligned side.
func (l *SlabLayout) DecodeIntoSlab(row []float64, data []byte) error {
	if len(row) != l.stride {
		return fmt.Errorf("nn: slab row has %d scalars, layout needs %d", len(row), l.stride)
	}
	if len(data) != l.wireSize {
		return fmt.Errorf("nn: update is %d bytes, layout needs exactly %d", len(data), l.wireSize)
	}
	for _, s := range l.segs {
		if !bytes.Equal(data[s.wireOff:s.wireOff+s.hdrLen], l.skeleton[s.wireOff:s.wireOff+s.hdrLen]) {
			return fmt.Errorf("nn: update structure does not match the round's slab layout")
		}
		if s.n == 0 {
			continue
		}
		src := data[s.wireOff+s.hdrLen : s.wireOff+s.hdrLen+8*s.n]
		dst := row[s.off : s.off+s.n]
		if hostLittleEndian {
			// The destination is float64-aligned by construction; viewing
			// it as bytes (alignment 1) makes the copy legal regardless of
			// the wire buffer's alignment.
			copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 8*s.n), src)
		} else {
			for i := range dst {
				dst[i] = math.Float64frombits(uint64(src[8*i]) | uint64(src[8*i+1])<<8 |
					uint64(src[8*i+2])<<16 | uint64(src[8*i+3])<<24 |
					uint64(src[8*i+4])<<32 | uint64(src[8*i+5])<<40 |
					uint64(src[8*i+6])<<48 | uint64(src[8*i+7])<<56)
			}
		}
	}
	return nil
}

// CopyIntoRow files an already-decoded update into row after checking it
// against the layout. It is the slab ingress for callers that hold a
// ParamSet (batch items, seal restores) rather than wire bytes.
func (l *SlabLayout) CopyIntoRow(row []float64, ps ParamSet) error {
	if len(row) != l.stride {
		return fmt.Errorf("nn: slab row has %d scalars, layout needs %d", len(row), l.stride)
	}
	if !l.Matches(ps) {
		return fmt.Errorf("nn: update structure does not match the round's slab layout")
	}
	for li := range ps.Layers {
		for ti, t := range ps.Layers[li].Tensors {
			off := l.offs[li][ti]
			copy(row[off:off+l.sizes[li][ti]], t.Data())
		}
	}
	return nil
}

// AppendWire re-encodes one row as wire bytes, appending to buf (which
// the caller reuses across updates): skeleton header segments interleaved
// with the row's payloads, so the result is byte-identical to
// EncodeParamSet of the row's view. Allocation-free once buf has grown
// to capacity.
func (l *SlabLayout) AppendWire(buf []byte, row []float64) ([]byte, error) {
	if len(row) != l.stride {
		return buf, fmt.Errorf("nn: slab row has %d scalars, layout needs %d", len(row), l.stride)
	}
	for _, s := range l.segs {
		buf = append(buf, l.skeleton[s.wireOff:s.wireOff+s.hdrLen]...)
		if s.n == 0 {
			continue
		}
		src := row[s.off : s.off+s.n]
		if hostLittleEndian {
			buf = append(buf, unsafe.Slice((*byte)(unsafe.Pointer(&src[0])), 8*s.n)...)
		} else {
			var scratch [8]byte
			for _, v := range src {
				bits := math.Float64bits(v)
				for b := 0; b < 8; b++ {
					scratch[b] = byte(bits >> (8 * b))
				}
				buf = append(buf, scratch[:]...)
			}
		}
	}
	return buf, nil
}

// NewChunkViews materialises ParamSet views for rows consecutive rows of
// data (which must hold rows*Stride() scalars): views[r].Layers[li]
// aliases row r's slab storage. The whole chunk's view structures come
// from a handful of bulk allocations — O(1) allocations per CHUNK, not
// per row — which is what amortises per-update view cost to ~zero. The
// views alias the layout's shape slices and must be treated as
// read-only structure (mixers only swap LayerParams values, so they
// qualify).
func (l *SlabLayout) NewChunkViews(data []float64, rows int) []ParamSet {
	if len(data) < rows*l.stride {
		panic(fmt.Sprintf("nn: chunk of %d scalars cannot hold %d rows of stride %d", len(data), rows, l.stride))
	}
	L := len(l.names)
	sets := make([]ParamSet, rows)
	layers := make([]LayerParams, rows*L)
	tens := make([]tensor.Tensor, rows*l.numT)
	ptrs := make([]*tensor.Tensor, rows*l.numT)
	ti := 0
	for r := 0; r < rows; r++ {
		row := data[r*l.stride : (r+1)*l.stride]
		lps := layers[r*L : (r+1)*L : (r+1)*L]
		for li := range l.names {
			nT := len(l.offs[li])
			lps[li].Name = l.names[li]
			lps[li].Tensors = ptrs[ti : ti+nT : ti+nT]
			for k := 0; k < nT; k++ {
				off := l.offs[li][k]
				tensor.View(&tens[ti], row[off:off+l.sizes[li][k]], l.shapes[li][k])
				ptrs[ti] = &tens[ti]
				ti++
			}
		}
		sets[r] = ParamSet{Layers: lps}
	}
	return sets
}
