package nn

import (
	"mixnn/internal/tensor"
)

// Layer is one stage of a feed-forward network operating on batched inputs.
//
// Forward consumes a batch tensor of shape [N, inDim] (inputs are always
// flattened row-major; convolutional layers interpret each row as a CHW
// volume) and returns [N, outDim]. When train is true the layer caches
// whatever it needs for the next Backward call.
//
// Backward consumes the loss gradient with respect to the layer's output,
// accumulates gradients into Grads(), and returns the gradient with respect
// to the layer's input. Callers must invoke Backward in reverse layer order
// immediately after a training Forward.
type Layer interface {
	// Name identifies the layer inside a ParamSet; unique within a network.
	Name() string
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the trainable tensors (nil for stateless layers).
	// The returned slice aliases live layer state.
	Params() []*tensor.Tensor
	// Grads returns the gradient accumulators matching Params.
	Grads() []*tensor.Tensor
}

// zeroGrads zeroes every tensor in gs; helper shared by layers.
func zeroGrads(gs []*tensor.Tensor) {
	for _, g := range gs {
		g.Zero()
	}
}
