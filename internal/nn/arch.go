package nn

import (
	"fmt"
	"math/rand"

	"mixnn/internal/tensor"
)

// Arch describes a model architecture that can be instantiated repeatedly
// with independent random initialisations — federated participants, the
// aggregation server and ∇Sim attack models all build structurally
// identical networks from the same Arch.
type Arch struct {
	// Name identifies the architecture in experiment configs and logs.
	Name string
	// Build instantiates a fresh network using rng for weight init.
	Build func(rng *rand.Rand) *Network
}

// New instantiates the architecture with the given seed.
func (a Arch) New(seed int64) *Network { return a.Build(rand.New(rand.NewSource(seed))) }

// ConvNetConfig parameterises the paper's main architecture: "a neural
// network composed of two convolutional layers and three fully connected
// layers" (§6.1.1), used for CIFAR10, MotionSense and MobiAct. Width knobs
// let experiments scale compute without changing the layer structure.
type ConvNetConfig struct {
	InC, InH, InW  int // input volume
	Classes        int
	Filters1       int // channels of conv1
	Filters2       int // channels of conv2
	Hidden1        int // width of fc1
	Hidden2        int // width of fc2
	PoolH1, PoolW1 int // pooling window after conv1 (1 = no pooling along that axis)
	PoolH2, PoolW2 int // pooling window after conv2
	Conv3          int // optional third conv (channels); 0 disables. Models §6.5's "three convolutional layers" variant.
}

// Validate fills defaults and checks divisibility constraints.
func (c *ConvNetConfig) Validate() error {
	if c.InC <= 0 || c.InH <= 0 || c.InW <= 0 || c.Classes <= 1 {
		return fmt.Errorf("nn: ConvNetConfig requires positive input dims and >=2 classes: %+v", *c)
	}
	setDefault := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	setDefault(&c.Filters1, 8)
	setDefault(&c.Filters2, 16)
	setDefault(&c.Hidden1, 64)
	setDefault(&c.Hidden2, 32)
	setDefault(&c.PoolH1, 1)
	setDefault(&c.PoolW1, 1)
	setDefault(&c.PoolH2, 1)
	setDefault(&c.PoolW2, 1)
	return nil
}

// NewConvNet returns the 2-conv + 3-FC architecture of §6.1.1 (plus an
// optional third conv block for the §6.5 system-size experiment).
func NewConvNet(name string, cfg ConvNetConfig) Arch {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return Arch{Name: name, Build: func(rng *rand.Rand) *Network {
		var layers []Layer
		h, w, ch := cfg.InH, cfg.InW, cfg.InC

		conv1 := NewConv2D("conv1", tensor.ConvGeom{InC: ch, InH: h, InW: w, KH: 3, KW: 3, Stride: 1, Pad: 1}, cfg.Filters1, rng)
		layers = append(layers, conv1, NewReLU("relu1"))
		ch = cfg.Filters1
		if cfg.PoolH1 > 1 || cfg.PoolW1 > 1 {
			p := NewMaxPool2DRect("pool1", ch, h, w, cfg.PoolH1, cfg.PoolW1)
			layers = append(layers, p)
			h, w = p.OutH(), p.OutW()
		}

		conv2 := NewConv2D("conv2", tensor.ConvGeom{InC: ch, InH: h, InW: w, KH: 3, KW: 3, Stride: 1, Pad: 1}, cfg.Filters2, rng)
		layers = append(layers, conv2, NewReLU("relu2"))
		ch = cfg.Filters2
		if cfg.PoolH2 > 1 || cfg.PoolW2 > 1 {
			p := NewMaxPool2DRect("pool2", ch, h, w, cfg.PoolH2, cfg.PoolW2)
			layers = append(layers, p)
			h, w = p.OutH(), p.OutW()
		}

		if cfg.Conv3 > 0 {
			conv3 := NewConv2D("conv3", tensor.ConvGeom{InC: ch, InH: h, InW: w, KH: 3, KW: 3, Stride: 1, Pad: 1}, cfg.Conv3, rng)
			layers = append(layers, conv3, NewReLU("relu3"))
			ch = cfg.Conv3
		}

		flat := ch * h * w
		layers = append(layers,
			NewFlatten("flatten"),
			NewDense("fc1", flat, cfg.Hidden1, rng), NewReLU("relu4"),
			NewDense("fc2", cfg.Hidden1, cfg.Hidden2, rng), NewReLU("relu5"),
			NewDense("fc3", cfg.Hidden2, cfg.Classes, rng),
		)
		return NewNetwork(layers...)
	}}
}

// DeepFaceConfig parameterises the DeepFace-style architecture used for
// LFW: convolutional, max-pooling, locally-connected and fully-connected
// layers (§6.1.1, Taigman et al.). Scaled down to synthetic-face size.
type DeepFaceConfig struct {
	InC, InH, InW int
	Classes       int
	Filters1      int // conv1 channels
	Filters2      int // conv2 channels
	Local3        int // locally-connected channels
	Hidden        int // fc width
}

// Validate fills defaults and sanity-checks dimensions.
func (c *DeepFaceConfig) Validate() error {
	if c.InC <= 0 || c.InH <= 0 || c.InW <= 0 || c.Classes <= 1 {
		return fmt.Errorf("nn: DeepFaceConfig requires positive input dims and >=2 classes: %+v", *c)
	}
	if c.InH%4 != 0 || c.InW%4 != 0 {
		return fmt.Errorf("nn: DeepFaceConfig input %dx%d must be divisible by 4 (two 2x2 pools)", c.InH, c.InW)
	}
	setDefault := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	setDefault(&c.Filters1, 8)
	setDefault(&c.Filters2, 16)
	setDefault(&c.Local3, 8)
	setDefault(&c.Hidden, 64)
	return nil
}

// NewDeepFace returns the DeepFace-style architecture:
// conv → pool → conv → pool → locally-connected → fc → fc.
func NewDeepFace(name string, cfg DeepFaceConfig) Arch {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return Arch{Name: name, Build: func(rng *rand.Rand) *Network {
		h, w := cfg.InH, cfg.InW

		conv1 := NewConv2D("conv1", tensor.ConvGeom{InC: cfg.InC, InH: h, InW: w, KH: 3, KW: 3, Stride: 1, Pad: 1}, cfg.Filters1, rng)
		pool1 := NewMaxPool2D("pool1", cfg.Filters1, h, w, 2)
		h, w = h/2, w/2

		conv2 := NewConv2D("conv2", tensor.ConvGeom{InC: cfg.Filters1, InH: h, InW: w, KH: 3, KW: 3, Stride: 1, Pad: 1}, cfg.Filters2, rng)
		pool2 := NewMaxPool2D("pool2", cfg.Filters2, h, w, 2)
		h, w = h/2, w/2

		// Pad 1 keeps the locally-connected layer well-defined even at the
		// reduced spatial sizes of the synthetic-face models.
		localGeom := tensor.ConvGeom{InC: cfg.Filters2, InH: h, InW: w, KH: 3, KW: 3, Stride: 1, Pad: 1}
		local3 := NewLocallyConnected2D("local3", localGeom, cfg.Local3, rng)
		lh, lw := localGeom.OutH(), localGeom.OutW()

		flat := cfg.Local3 * lh * lw
		return NewNetwork(
			conv1, NewReLU("relu1"), pool1,
			conv2, NewReLU("relu2"), pool2,
			local3, NewReLU("relu3"),
			NewFlatten("flatten"),
			NewDense("fc1", flat, cfg.Hidden, rng), NewReLU("relu4"),
			NewDense("fc2", cfg.Hidden, cfg.Classes, rng),
		)
	}}
}

// NewMLP returns a plain multi-layer perceptron; used by fast unit tests
// and the quickstart example.
func NewMLP(name string, in int, hidden []int, classes int) Arch {
	if in <= 0 || classes <= 1 {
		panic(fmt.Sprintf("nn: NewMLP requires positive input and >=2 classes, got %d/%d", in, classes))
	}
	return Arch{Name: name, Build: func(rng *rand.Rand) *Network {
		var layers []Layer
		prev := in
		for i, hdim := range hidden {
			layers = append(layers,
				NewDense(fmt.Sprintf("fc%d", i+1), prev, hdim, rng),
				NewReLU(fmt.Sprintf("relu%d", i+1)),
			)
			prev = hdim
		}
		layers = append(layers, NewDense(fmt.Sprintf("fc%d", len(hidden)+1), prev, classes, rng))
		return NewNetwork(layers...)
	}}
}
