package nn

import (
	"math"
	"math/rand"
	"testing"

	"mixnn/internal/tensor"
)

// xorBatch returns the classic XOR problem as a 4-sample batch.
func xorBatch() (*tensor.Tensor, []int) {
	x := tensor.MustFromSlice([]float64{
		0, 0,
		0, 1,
		1, 0,
		1, 1,
	}, 4, 2)
	return x, []int{0, 1, 1, 0}
}

func TestNetworkLearnsXORWithSGD(t *testing.T) {
	net := NewMLP("xor", 2, []int{8}, 2).New(7)
	x, y := xorBatch()
	opt := NewSGD(0.5, 0.9)
	for i := 0; i < 500; i++ {
		net.TrainBatch(x, y, opt)
	}
	if acc := net.Evaluate(x, y); acc != 1 {
		t.Fatalf("XOR accuracy after training = %g, want 1", acc)
	}
}

func TestNetworkLearnsXORWithAdam(t *testing.T) {
	net := NewMLP("xor", 2, []int{8}, 2).New(3)
	x, y := xorBatch()
	opt := NewAdam(0.05)
	for i := 0; i < 300; i++ {
		net.TrainBatch(x, y, opt)
	}
	if acc := net.Evaluate(x, y); acc != 1 {
		t.Fatalf("XOR accuracy after training = %g, want 1", acc)
	}
}

func TestTrainBatchDecreasesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewMLP("toy", 5, []int{10}, 3).New(4)
	x := tensor.New(16, 5).RandN(rng, 0, 1)
	y := make([]int, 16)
	for i := range y {
		y[i] = rng.Intn(3)
	}
	before := net.Loss(x, y)
	opt := NewAdam(0.01)
	for i := 0; i < 50; i++ {
		net.TrainBatch(x, y, opt)
	}
	after := net.Loss(x, y)
	if after >= before {
		t.Fatalf("loss did not decrease: %g -> %g", before, after)
	}
}

func TestSnapshotSetParamsRoundTrip(t *testing.T) {
	net := NewMLP("toy", 3, []int{4}, 2).New(5)
	snap := net.SnapshotParams()

	// Train a bit to move the live parameters away from the snapshot.
	x, y := xorBatch()
	x2 := tensor.MustFromSlice([]float64{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	_ = x
	opt := NewSGD(0.1, 0)
	for i := 0; i < 10; i++ {
		net.TrainBatch(tensor.MustFromSlice([]float64{1, 0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 1}, 4, 3), y, opt)
	}
	_ = x2
	if net.Params().ApproxEqual(snap, 1e-12) {
		t.Fatal("training did not change parameters")
	}

	if err := net.SetParams(snap); err != nil {
		t.Fatalf("SetParams: %v", err)
	}
	if !net.Params().ApproxEqual(snap, 0) {
		t.Fatal("SetParams did not restore the snapshot")
	}

	// Snapshot must be insulated from further training.
	for i := 0; i < 5; i++ {
		net.TrainBatch(tensor.MustFromSlice([]float64{1, 0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 1}, 4, 3), y, opt)
	}
	restored := NewMLP("toy", 3, []int{4}, 2).New(99)
	if err := restored.SetParams(snap); err != nil {
		t.Fatalf("SetParams on sibling network: %v", err)
	}
}

func TestSetParamsRejectsIncompatible(t *testing.T) {
	a := NewMLP("a", 3, []int{4}, 2).New(1)
	b := NewMLP("b", 5, []int{4}, 2).New(1)
	if err := a.SetParams(b.SnapshotParams()); err == nil {
		t.Fatal("SetParams accepted incompatible shape")
	}
}

func TestDuplicateLayerNamePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate parameterised layer names did not panic")
		}
	}()
	NewNetwork(NewDense("fc", 2, 2, rng), NewDense("fc", 2, 2, rng))
}

func TestGradParamsMatchesStructure(t *testing.T) {
	net := NewMLP("toy", 3, []int{4}, 2).New(6)
	x := tensor.MustFromSlice([]float64{1, 0, 0, 0, 1, 0}, 2, 3)
	net.TrainBatch(x, []int{0, 1}, NewSGD(0.1, 0))
	g := net.GradParams()
	if !g.Compatible(net.Params()) {
		t.Fatal("GradParams structure differs from Params")
	}
	if g.Flatten().Norm() == 0 {
		t.Fatal("gradients are identically zero after a training step")
	}
}

func TestZeroGrads(t *testing.T) {
	net := NewMLP("toy", 3, []int{4}, 2).New(8)
	x := tensor.MustFromSlice([]float64{1, 0, 0, 0, 1, 0}, 2, 3)
	net.TrainBatch(x, []int{0, 1}, NewSGD(0.1, 0))
	net.ZeroGrads()
	if got := net.GradParams().Flatten().Norm(); got != 0 {
		t.Fatalf("gradient norm after ZeroGrads = %g, want 0", got)
	}
}

func TestPredictConsistentWithEvaluate(t *testing.T) {
	net := NewMLP("toy", 4, []int{6}, 3).New(9)
	rng := rand.New(rand.NewSource(10))
	x := tensor.New(8, 4).RandN(rng, 0, 1)
	y := make([]int, 8)
	preds := net.Predict(x)
	copy(y, preds)
	if acc := net.Evaluate(x, y); acc != 1 {
		t.Fatalf("accuracy against own predictions = %g, want 1", acc)
	}
}

func TestOptimizerStatefulness(t *testing.T) {
	// Adam with zero gradient must not move parameters on the first step
	// (m and v stay zero).
	p := tensor.MustFromSlice([]float64{1, 2}, 2)
	g := tensor.New(2)
	before := p.Clone()
	NewAdam(0.1).Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	if !tensor.ApproxEqual(p, before, 1e-12) {
		t.Fatalf("Adam moved params with zero grad: %v", p)
	}

	// SGD with momentum accumulates velocity across steps.
	p2 := tensor.MustFromSlice([]float64{0}, 1)
	g2 := tensor.MustFromSlice([]float64{1}, 1)
	sgd := NewSGD(0.1, 0.9)
	sgd.Step([]*tensor.Tensor{p2}, []*tensor.Tensor{g2})
	first := p2.Data()[0]
	sgd.Step([]*tensor.Tensor{p2}, []*tensor.Tensor{g2})
	second := p2.Data()[0] - first
	if math.Abs(second) <= math.Abs(first) {
		t.Fatalf("momentum did not accelerate: step1 %g step2 %g", first, second)
	}
}

func TestNewOptimizer(t *testing.T) {
	if _, err := NewOptimizer("adam", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewOptimizer("sgd", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := NewOptimizer("adagrad", 0.1); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
}

func TestArchReproducibility(t *testing.T) {
	arch := NewMLP("repro", 4, []int{5}, 2)
	a := arch.New(42).SnapshotParams()
	b := arch.New(42).SnapshotParams()
	if !a.ApproxEqual(b, 0) {
		t.Fatal("same seed produced different initialisations")
	}
	c := arch.New(43).SnapshotParams()
	if a.ApproxEqual(c, 1e-12) {
		t.Fatal("different seeds produced identical initialisations")
	}
}

func TestConvNetArchitectureShape(t *testing.T) {
	arch := NewConvNet("cifar", ConvNetConfig{
		InC: 3, InH: 32, InW: 32, Classes: 10,
		PoolH1: 2, PoolW1: 2, PoolH2: 2, PoolW2: 2,
	})
	net := arch.New(1)
	// Two conv + three dense = five parameterised layers (the paper's model).
	ps := net.Params()
	if ps.NumLayers() != 5 {
		t.Fatalf("parameterised layers = %d, want 5", ps.NumLayers())
	}
	wantNames := []string{"conv1", "conv2", "fc1", "fc2", "fc3"}
	for i, lp := range ps.Layers {
		if lp.Name != wantNames[i] {
			t.Fatalf("layer %d named %q, want %q", i, lp.Name, wantNames[i])
		}
	}
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(2, 3*32*32).RandN(rng, 0, 1)
	out := net.Forward(x, false)
	if out.Dim(0) != 2 || out.Dim(1) != 10 {
		t.Fatalf("output shape %v, want [2 10]", out.Shape())
	}
}

func TestConvNet3ConvVariant(t *testing.T) {
	arch := NewConvNet("big", ConvNetConfig{
		InC: 3, InH: 16, InW: 16, Classes: 10,
		PoolH1: 2, PoolW1: 2, PoolH2: 2, PoolW2: 2,
		Conv3: 8,
	})
	ps := arch.New(1).Params()
	if ps.NumLayers() != 6 {
		t.Fatalf("parameterised layers = %d, want 6 (3 conv + 3 fc)", ps.NumLayers())
	}
}

func TestDeepFaceArchitectureShape(t *testing.T) {
	arch := NewDeepFace("lfw", DeepFaceConfig{InC: 1, InH: 16, InW: 16, Classes: 2})
	net := arch.New(1)
	names := make(map[string]bool)
	for _, lp := range net.Params().Layers {
		names[lp.Name] = true
	}
	for _, want := range []string{"conv1", "conv2", "local3", "fc1", "fc2"} {
		if !names[want] {
			t.Fatalf("missing layer %q in DeepFace architecture", want)
		}
	}
	rng := rand.New(rand.NewSource(3))
	out := net.Forward(tensor.New(3, 256).RandN(rng, 0, 1), false)
	if out.Dim(1) != 2 {
		t.Fatalf("output classes = %d, want 2", out.Dim(1))
	}
}
