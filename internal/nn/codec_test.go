package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"unsafe"

	"mixnn/internal/tensor"
)

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := randomParamSet(rng, 3, 5, 2)
	raw, err := EncodeParamSet(ps)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if len(raw) != EncodedSize(ps) {
		t.Fatalf("encoded %d bytes, EncodedSize predicted %d", len(raw), EncodedSize(ps))
	}
	got, err := DecodeParamSet(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.ApproxEqual(ps, 0) {
		t.Fatal("round trip changed values")
	}
	if !got.Compatible(ps) {
		t.Fatal("round trip changed structure")
	}
}

func TestCodecSpecialValues(t *testing.T) {
	ps := ParamSet{Layers: []LayerParams{{
		Name: "weird",
		Tensors: []*tensor.Tensor{tensor.MustFromSlice(
			[]float64{0, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64, -0.0}, 6)},
	}}}
	raw, err := EncodeParamSet(ps)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeParamSet(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	gd := got.Layers[0].Tensors[0].Data()
	pd := ps.Layers[0].Tensors[0].Data()
	for i := range pd {
		if math.Float64bits(gd[i]) != math.Float64bits(pd[i]) {
			t.Fatalf("scalar %d: %x != %x", i, math.Float64bits(gd[i]), math.Float64bits(pd[i]))
		}
	}
}

func TestCodecNaNRoundTrip(t *testing.T) {
	ps := ParamSet{Layers: []LayerParams{{
		Name:    "nan",
		Tensors: []*tensor.Tensor{tensor.MustFromSlice([]float64{math.NaN()}, 1)},
	}}}
	raw, err := EncodeParamSet(ps)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeParamSet(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !math.IsNaN(got.Layers[0].Tensors[0].Data()[0]) {
		t.Fatal("NaN did not survive the round trip")
	}
}

// TestDecodeParamSetNoCopyMatches: the zero-copy decoder must agree with
// the copying decoder bit-for-bit, at every buffer alignment (shifting
// the buffer start forces the per-tensor alias/fallback decision both
// ways).
func TestDecodeParamSetNoCopyMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, shape := range [][]int{{3, 5, 2}, {1}, {4, 4}} {
		raw, err := EncodeParamSet(randomParamSet(rng, shape...))
		if err != nil {
			t.Fatal(err)
		}
		want, err := DecodeParamSet(raw)
		if err != nil {
			t.Fatal(err)
		}
		for shift := 0; shift < 8; shift++ {
			buf := make([]byte, shift+len(raw))
			copy(buf[shift:], raw)
			got, err := DecodeParamSetNoCopy(buf[shift:])
			if err != nil {
				t.Fatalf("shift %d: %v", shift, err)
			}
			if !got.Compatible(want) || !got.ApproxEqual(want, 0) {
				t.Fatalf("shift %d: zero-copy decode diverged", shift)
			}
		}
	}
}

// TestDecodeParamSetNoCopyAliases pins the ownership contract: the
// decoded tensors share storage with the input buffer (on little-endian
// hosts, for aligned payloads), so callers must treat both as immutable.
func TestDecodeParamSetNoCopyAliases(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("aliasing requires a little-endian host")
	}
	ps := ParamSet{Layers: []LayerParams{{
		Name:    "abc", // 4+1+4 + 2+3+4 + 1+4 = 23 header bytes... shift to align below
		Tensors: []*tensor.Tensor{tensor.MustFromSlice([]float64{1, 2, 3, 4}, 4)},
	}}}
	raw, err := EncodeParamSet(ps)
	if err != nil {
		t.Fatal(err)
	}
	// Find the alignment at which the single tensor's payload (the last
	// 32 bytes) is 8-byte aligned, so the alias path is exercised for
	// sure.
	for shift := 0; shift < 8; shift++ {
		buf := make([]byte, shift+len(raw))
		copy(buf[shift:], raw)
		data := buf[shift:]
		payload := data[len(data)-32:]
		if uintptr(unsafe.Pointer(&payload[0]))%8 != 0 {
			continue
		}
		got, err := DecodeParamSetNoCopy(data)
		if err != nil {
			t.Fatal(err)
		}
		payload[0] ^= 0xFF // mutate the buffer...
		if got.Layers[0].Tensors[0].Data()[0] == 1 {
			t.Fatal("aligned payload was copied, not aliased")
		}
		return
	}
	t.Fatal("no alignment produced an aligned payload")
}

func TestDecodeParamSetNoCopyRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	valid, err := EncodeParamSet(randomParamSet(rng, 4))
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"empty":     nil,
		"bad magic": append([]byte("XXXX"), valid[4:]...),
		"truncated": valid[:len(valid)-5],
		"trailing":  append(append([]byte(nil), valid...), 0x00),
	} {
		if _, err := DecodeParamSetNoCopy(data); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	valid, err := EncodeParamSet(randomParamSet(rng, 4))
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("XXXX"), valid[4:]...)},
		{"bad version", func() []byte {
			b := append([]byte(nil), valid...)
			b[4] = 99
			return b
		}()},
		{"truncated header", valid[:6]},
		{"truncated payload", valid[:len(valid)-5]},
		{"huge layer count", func() []byte {
			b := append([]byte(nil), valid...)
			b[5], b[6], b[7], b[8] = 0xff, 0xff, 0xff, 0xff
			return b
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeParamSet(tt.data); err == nil {
				t.Fatal("decode of corrupt input succeeded")
			}
		})
	}
}

func TestDecodeRejectsOversizedTensor(t *testing.T) {
	// Hand-craft a header that declares a tensor far beyond the element
	// budget; the decoder must reject it before allocating.
	var buf bytes.Buffer
	buf.WriteString("MXPS")
	buf.WriteByte(1)                          // version
	buf.Write([]byte{1, 0, 0, 0})             // 1 layer
	buf.Write([]byte{1, 0})                   // name length 1
	buf.WriteByte('x')                        // name
	buf.Write([]byte{1, 0, 0, 0})             // 1 tensor
	buf.WriteByte(2)                          // rank 2
	buf.Write([]byte{0xff, 0xff, 0xff, 0x7f}) // dim 0: ~2^31
	buf.Write([]byte{0xff, 0xff, 0xff, 0x7f}) // dim 1: ~2^31
	if _, err := DecodeParamSet(buf.Bytes()); err == nil {
		t.Fatal("decode of oversized tensor succeeded")
	}
}

func TestDecodeRejectsZeroDim(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("MXPS")
	buf.WriteByte(1)
	buf.Write([]byte{1, 0, 0, 0})
	buf.Write([]byte{1, 0})
	buf.WriteByte('x')
	buf.Write([]byte{1, 0, 0, 0})
	buf.WriteByte(1)              // rank 1
	buf.Write([]byte{0, 0, 0, 0}) // dim 0 = 0
	if _, err := DecodeParamSet(buf.Bytes()); err == nil {
		t.Fatal("decode of zero-dim tensor succeeded")
	}
}

// Property: encode/decode is the identity on random ParamSets.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64, l8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nLayers := int(l8%4) + 1
		sizes := make([]int, nLayers)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(6)
		}
		ps := randomParamSet(rng, sizes...)
		raw, err := EncodeParamSet(ps)
		if err != nil {
			return false
		}
		got, err := DecodeParamSet(raw)
		if err != nil {
			return false
		}
		return got.ApproxEqual(ps, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
