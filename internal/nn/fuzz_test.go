package nn

import (
	"math/rand"
	"testing"
)

// FuzzDecodeParamSet hammers the codec with arbitrary bytes: it must never
// panic or over-allocate, and anything it accepts must re-encode to a
// decodable equivalent (the proxy decodes these bytes from untrusted
// participants).
func FuzzDecodeParamSet(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	valid, err := EncodeParamSet(randomParamSet(rng, 3, 2))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("MXPS"))
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodeParamSet(data)
		psNC, errNC := DecodeParamSetNoCopy(data)
		// The zero-copy decoder must accept exactly what the copying one
		// accepts, with identical values.
		if (err == nil) != (errNC == nil) {
			t.Fatalf("decoder disagreement: copy err=%v, nocopy err=%v", err, errNC)
		}
		if err != nil {
			return
		}
		if !psNC.Compatible(ps) || !psNC.ApproxEqual(ps, 0) {
			t.Fatal("zero-copy decode diverged from copying decode")
		}
		re, err := EncodeParamSet(ps)
		if err != nil {
			t.Fatalf("decoded ParamSet failed to re-encode: %v", err)
		}
		back, err := DecodeParamSet(re)
		if err != nil {
			t.Fatalf("re-encoded ParamSet failed to decode: %v", err)
		}
		if !back.Compatible(ps) {
			t.Fatal("re-encode round trip changed structure")
		}
	})
}
