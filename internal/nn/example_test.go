package nn_test

import (
	"fmt"

	"mixnn/internal/nn"
	"mixnn/internal/tensor"
)

// ExampleNetwork trains a tiny network on XOR with Adam — the smallest
// end-to-end use of the neural-network substrate.
func ExampleNetwork() {
	arch := nn.NewMLP("xor", 2, []int{8}, 2)
	net := arch.New(7)

	x := tensor.MustFromSlice([]float64{
		0, 0,
		0, 1,
		1, 0,
		1, 1,
	}, 4, 2)
	y := []int{0, 1, 1, 0}

	opt := nn.NewAdam(0.05)
	for i := 0; i < 300; i++ {
		net.TrainBatch(x, y, opt)
	}
	fmt.Println("accuracy:", net.Evaluate(x, y))
	// Output:
	// accuracy: 1
}

// ExampleParamSet demonstrates the update arithmetic federated averaging
// relies on.
func ExampleParamSet() {
	a := nn.ParamSet{Layers: []nn.LayerParams{
		{Name: "fc1", Tensors: []*tensor.Tensor{tensor.MustFromSlice([]float64{1, 2}, 2)}},
	}}
	b := nn.ParamSet{Layers: []nn.LayerParams{
		{Name: "fc1", Tensors: []*tensor.Tensor{tensor.MustFromSlice([]float64{3, 6}, 2)}},
	}}

	avg, err := nn.Average([]nn.ParamSet{a, b})
	if err != nil {
		panic(err)
	}
	fmt.Println(avg.Layers[0].Tensors[0].Data())

	raw, err := nn.EncodeParamSet(avg)
	if err != nil {
		panic(err)
	}
	back, err := nn.DecodeParamSet(raw)
	if err != nil {
		panic(err)
	}
	fmt.Println("codec round trip:", back.ApproxEqual(avg, 0))
	// Output:
	// [2 4]
	// codec round trip: true
}
