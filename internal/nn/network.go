package nn

import (
	"fmt"

	"mixnn/internal/tensor"
)

// Network is an ordered stack of layers trained with softmax cross-entropy.
type Network struct {
	layers []Layer
	loss   SoftmaxCrossEntropy
}

// NewNetwork builds a network from the given layers. Layer names carrying
// parameters must be unique (they key the ParamSet representation).
func NewNetwork(layers ...Layer) *Network {
	seen := make(map[string]bool, len(layers))
	for _, l := range layers {
		if len(l.Params()) == 0 {
			continue
		}
		if seen[l.Name()] {
			panic(fmt.Sprintf("nn: duplicate parameterised layer name %q", l.Name()))
		}
		seen[l.Name()] = true
	}
	return &Network{layers: layers}
}

// Layers returns the layer stack (shared, not copied).
func (n *Network) Layers() []Layer { return n.layers }

// Forward runs the batch x through every layer. train selects whether
// layers cache state for a subsequent Backward.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the loss gradient through every layer in reverse,
// accumulating parameter gradients.
func (n *Network) Backward(grad *tensor.Tensor) {
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].Backward(grad)
	}
}

// ZeroGrads clears every accumulated gradient.
func (n *Network) ZeroGrads() {
	for _, l := range n.layers {
		zeroGrads(l.Grads())
	}
}

// TrainBatch runs one optimisation step on a batch and returns the loss.
func (n *Network) TrainBatch(x *tensor.Tensor, labels []int, opt Optimizer) float64 {
	n.ZeroGrads()
	logits := n.Forward(x, true)
	loss, probs := n.loss.Forward(logits, labels)
	n.Backward(n.loss.Backward(probs, labels))
	params, grads := n.flatParams()
	opt.Step(params, grads)
	return loss
}

// Loss computes the mean softmax cross-entropy of the batch without
// updating parameters.
func (n *Network) Loss(x *tensor.Tensor, labels []int) float64 {
	loss, _ := n.loss.Forward(n.Forward(x, false), labels)
	return loss
}

// Predict returns the argmax class per row of x.
func (n *Network) Predict(x *tensor.Tensor) []int {
	return n.Forward(x, false).ArgMaxRows()
}

// Evaluate returns classification accuracy on (x, labels).
func (n *Network) Evaluate(x *tensor.Tensor, labels []int) float64 {
	return Accuracy(n.Forward(x, false), labels)
}

// flatParams returns the parallel (params, grads) slices across layers.
func (n *Network) flatParams() ([]*tensor.Tensor, []*tensor.Tensor) {
	var ps, gs []*tensor.Tensor
	for _, l := range n.layers {
		ps = append(ps, l.Params()...)
		gs = append(gs, l.Grads()...)
	}
	return ps, gs
}

// Params returns the live parameters grouped by layer. Mutating the
// returned tensors mutates the network.
func (n *Network) Params() ParamSet {
	var out ParamSet
	for _, l := range n.layers {
		if ps := l.Params(); len(ps) > 0 {
			out.Layers = append(out.Layers, LayerParams{Name: l.Name(), Tensors: ps})
		}
	}
	return out
}

// SnapshotParams returns a deep copy of the network parameters — the
// "parameter update" a federated participant sends upstream.
func (n *Network) SnapshotParams() ParamSet { return n.Params().Clone() }

// SetParams copies the values of ps into the network parameters.
// The structure must match the network exactly.
func (n *Network) SetParams(ps ParamSet) error {
	live := n.Params()
	if !live.Compatible(ps) {
		return fmt.Errorf("nn: SetParams: incompatible ParamSet")
	}
	for i, lp := range live.Layers {
		for j, t := range lp.Tensors {
			copy(t.Data(), ps.Layers[i].Tensors[j].Data())
		}
	}
	return nil
}

// GradParams returns a deep copy of the accumulated gradients grouped by
// layer, structurally parallel to Params().
func (n *Network) GradParams() ParamSet {
	var out ParamSet
	for _, l := range n.layers {
		if gs := l.Grads(); len(gs) > 0 {
			tensors := make([]*tensor.Tensor, len(gs))
			for i, g := range gs {
				tensors[i] = g.Clone()
			}
			out.Layers = append(out.Layers, LayerParams{Name: l.Name(), Tensors: tensors})
		}
	}
	return out
}
