package nn

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"mixnn/internal/tensor"
)

// hostLittleEndian reports whether the host stores multi-byte words in
// the wire format's byte order; only then can tensor payloads be aliased
// instead of converted.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// DecodeParamSetNoCopy parses the binary wire format like DecodeParamSet
// but, where possible, aliases each tensor's storage directly over the
// input buffer instead of copying it — the §6.5 "store" stage of the
// proxy then costs a structural walk rather than a full second copy of
// the update. A tensor payload is aliased when the host is little-endian
// and the payload happens to sit 8-byte aligned in data; other tensors
// fall back to the converting path, so the result is always correct.
//
// Ownership contract: the returned ParamSet shares memory with data. The
// caller must neither modify data afterwards nor mutate the returned
// tensors in place. The MixNN proxy satisfies both: each decrypted update
// buffer is owned by the ingesting request, and mixers only ever swap
// layer pointers.
func DecodeParamSetNoCopy(data []byte) (ParamSet, error) {
	d := byteCursor{buf: data}
	magic, err := d.take(4)
	if err != nil || string(magic) != codecMagic {
		return ParamSet{}, fmt.Errorf("nn: bad magic %q", magic)
	}
	version, err := d.u8()
	if err != nil {
		return ParamSet{}, fmt.Errorf("nn: read version: %w", err)
	}
	if version != codecVersion {
		return ParamSet{}, fmt.Errorf("nn: unsupported codec version %d", version)
	}
	layerCount, err := d.u32()
	if err != nil {
		return ParamSet{}, fmt.Errorf("nn: read layer count: %w", err)
	}
	if layerCount > maxDecodeLayers {
		return ParamSet{}, fmt.Errorf("nn: layer count %d exceeds limit %d", layerCount, maxDecodeLayers)
	}
	totalElems := 0
	ps := ParamSet{Layers: make([]LayerParams, 0, layerCount)}
	for li := uint32(0); li < layerCount; li++ {
		nameLen, err := d.u16()
		if err != nil {
			return ParamSet{}, fmt.Errorf("nn: read name length: %w", err)
		}
		name, err := d.take(int(nameLen))
		if err != nil {
			return ParamSet{}, fmt.Errorf("nn: read name: %w", err)
		}
		tensorCount, err := d.u32()
		if err != nil {
			return ParamSet{}, fmt.Errorf("nn: read tensor count: %w", err)
		}
		if tensorCount > maxDecodeTensors {
			return ParamSet{}, fmt.Errorf("nn: tensor count %d exceeds limit %d", tensorCount, maxDecodeTensors)
		}
		lp := LayerParams{Name: string(name), Tensors: make([]*tensor.Tensor, 0, tensorCount)}
		for ti := uint32(0); ti < tensorCount; ti++ {
			t, n, err := d.tensorNoCopy(maxDecodeTotalElements - totalElems)
			if err != nil {
				return ParamSet{}, fmt.Errorf("nn: layer %q tensor %d: %w", lp.Name, ti, err)
			}
			totalElems += n
			lp.Tensors = append(lp.Tensors, t)
		}
		ps.Layers = append(ps.Layers, lp)
	}
	if d.off != len(d.buf) {
		return ParamSet{}, fmt.Errorf("nn: %d trailing bytes after param set", len(d.buf)-d.off)
	}
	return ps, nil
}

// byteCursor walks a byte slice with bounds checking; unlike the
// io.Reader-based decoder it keeps offsets, which is what aliasing needs.
type byteCursor struct {
	buf []byte
	off int
}

func (d *byteCursor) take(n int) ([]byte, error) {
	if n < 0 || n > len(d.buf)-d.off {
		return nil, fmt.Errorf("need %d bytes, have %d", n, len(d.buf)-d.off)
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b, nil
}

func (d *byteCursor) u8() (uint8, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *byteCursor) u16() (uint16, error) {
	b, err := d.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (d *byteCursor) u32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *byteCursor) tensorNoCopy(remainingBudget int) (*tensor.Tensor, int, error) {
	rank, err := d.u8()
	if err != nil {
		return nil, 0, fmt.Errorf("read rank: %w", err)
	}
	if rank == 0 || rank > maxDecodeRank {
		return nil, 0, fmt.Errorf("rank %d outside [1,%d]", rank, maxDecodeRank)
	}
	shape := make([]int, rank)
	elems := 1
	for i := range shape {
		dim, err := d.u32()
		if err != nil {
			return nil, 0, fmt.Errorf("read dim: %w", err)
		}
		if dim == 0 {
			return nil, 0, fmt.Errorf("zero dimension")
		}
		if elems > remainingBudget/int(dim) {
			return nil, 0, fmt.Errorf("tensor exceeds element budget")
		}
		elems *= int(dim)
		shape[i] = int(dim)
	}
	raw, err := d.take(8 * elems)
	if err != nil {
		return nil, 0, fmt.Errorf("read data: %w", err)
	}
	var data []float64
	if hostLittleEndian && uintptr(unsafe.Pointer(&raw[0]))%8 == 0 {
		// Fast path: the payload already IS the little-endian float64
		// slice; alias it (alignment-checked, so -race/checkptr is happy).
		data = unsafe.Slice((*float64)(unsafe.Pointer(&raw[0])), elems)
	} else {
		data = make([]float64, elems)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
	}
	t, err := tensor.FromSlice(data, shape...)
	if err != nil {
		return nil, 0, err
	}
	return t, elems, nil
}
