// Package nn implements the neural-network substrate of the MixNN
// reproduction: layers (dense, convolutional, locally-connected, pooling,
// activations), the softmax cross-entropy loss, SGD and Adam optimisers,
// and the ParamSet representation of per-layer model parameters that the
// federated-learning pipeline and the MixNN mixer exchange.
//
// Everything is built on internal/tensor; there are no external
// dependencies. Backward passes are verified against finite differences in
// gradcheck_test.go.
package nn

import (
	"fmt"

	"mixnn/internal/tensor"
)

// LayerParams groups the trainable tensors of one layer under the layer's
// name. The MixNN proxy mixes model updates at exactly this granularity:
// a LayerParams value is the atomic unit that may be routed independently
// of the other layers of the same participant.
type LayerParams struct {
	Name    string
	Tensors []*tensor.Tensor
}

// Clone returns a deep copy.
func (lp LayerParams) Clone() LayerParams {
	out := LayerParams{Name: lp.Name, Tensors: make([]*tensor.Tensor, len(lp.Tensors))}
	for i, t := range lp.Tensors {
		out.Tensors[i] = t.Clone()
	}
	return out
}

// NumParams returns the total number of scalars in the layer.
func (lp LayerParams) NumParams() int {
	n := 0
	for _, t := range lp.Tensors {
		n += t.Size()
	}
	return n
}

// ParamSet is the full set of trainable parameters of a model, ordered by
// layer. It is the unit exchanged between participants, the MixNN proxy and
// the aggregation server (the paper's "parameter update").
type ParamSet struct {
	Layers []LayerParams
}

// Clone returns a deep copy.
func (ps ParamSet) Clone() ParamSet {
	out := ParamSet{Layers: make([]LayerParams, len(ps.Layers))}
	for i, lp := range ps.Layers {
		out.Layers[i] = lp.Clone()
	}
	return out
}

// NumLayers returns the number of layers with trainable parameters.
func (ps ParamSet) NumLayers() int { return len(ps.Layers) }

// NumParams returns the total number of scalars across all layers.
func (ps ParamSet) NumParams() int {
	n := 0
	for _, lp := range ps.Layers {
		n += lp.NumParams()
	}
	return n
}

// Compatible reports whether two ParamSets have identical structure (same
// layers, names, tensor counts and shapes), i.e. whether arithmetic between
// them is meaningful.
func (ps ParamSet) Compatible(o ParamSet) bool {
	if len(ps.Layers) != len(o.Layers) {
		return false
	}
	for i, lp := range ps.Layers {
		ol := o.Layers[i]
		if lp.Name != ol.Name || len(lp.Tensors) != len(ol.Tensors) {
			return false
		}
		for j, t := range lp.Tensors {
			if !t.SameShape(ol.Tensors[j]) {
				return false
			}
		}
	}
	return true
}

func (ps ParamSet) mustCompatible(o ParamSet, op string) {
	if !ps.Compatible(o) {
		panic(fmt.Sprintf("nn: %s on incompatible ParamSets", op))
	}
}

// Add adds o into ps element-wise and returns ps.
func (ps ParamSet) Add(o ParamSet) ParamSet {
	ps.mustCompatible(o, "Add")
	for i, lp := range ps.Layers {
		for j, t := range lp.Tensors {
			t.Add(o.Layers[i].Tensors[j])
		}
	}
	return ps
}

// Sub subtracts o from ps element-wise and returns ps.
func (ps ParamSet) Sub(o ParamSet) ParamSet {
	ps.mustCompatible(o, "Sub")
	for i, lp := range ps.Layers {
		for j, t := range lp.Tensors {
			t.Sub(o.Layers[i].Tensors[j])
		}
	}
	return ps
}

// Scale multiplies every scalar by alpha and returns ps.
func (ps ParamSet) Scale(alpha float64) ParamSet {
	for _, lp := range ps.Layers {
		for _, t := range lp.Tensors {
			t.Scale(alpha)
		}
	}
	return ps
}

// AddScaled adds alpha*o into ps element-wise and returns ps.
func (ps ParamSet) AddScaled(o ParamSet, alpha float64) ParamSet {
	ps.mustCompatible(o, "AddScaled")
	for i, lp := range ps.Layers {
		for j, t := range lp.Tensors {
			t.AddScaled(o.Layers[i].Tensors[j], alpha)
		}
	}
	return ps
}

// Flatten concatenates every scalar of the ParamSet into a single rank-1
// tensor. ∇Sim uses this to compute cosine similarities between whole
// updates; Figure 9 uses it for Euclidean distances.
func (ps ParamSet) Flatten() *tensor.Tensor {
	out := tensor.New(maxInt(ps.NumParams(), 1))
	off := 0
	for _, lp := range ps.Layers {
		for _, t := range lp.Tensors {
			copy(out.Data()[off:], t.Data())
			off += t.Size()
		}
	}
	return out
}

// FlattenLayer concatenates the scalars of layer i into a rank-1 tensor.
func (ps ParamSet) FlattenLayer(i int) *tensor.Tensor {
	lp := ps.Layers[i]
	out := tensor.New(maxInt(lp.NumParams(), 1))
	off := 0
	for _, t := range lp.Tensors {
		copy(out.Data()[off:], t.Data())
		off += t.Size()
	}
	return out
}

// ApproxEqual reports whether two compatible ParamSets agree element-wise
// within absolute tolerance tol.
func (ps ParamSet) ApproxEqual(o ParamSet, tol float64) bool {
	if !ps.Compatible(o) {
		return false
	}
	for i, lp := range ps.Layers {
		for j, t := range lp.Tensors {
			if !tensor.ApproxEqual(t, o.Layers[i].Tensors[j], tol) {
				return false
			}
		}
	}
	return true
}

// Average returns the element-wise mean of the given ParamSets. This is the
// aggregation function Agr of the paper's §4.2; the MixNN equivalence
// theorem states Average(mixed) == Average(original).
func Average(sets []ParamSet) (ParamSet, error) {
	if len(sets) == 0 {
		return ParamSet{}, fmt.Errorf("nn: Average of zero ParamSets")
	}
	for i := 1; i < len(sets); i++ {
		if !sets[0].Compatible(sets[i]) {
			return ParamSet{}, fmt.Errorf("nn: Average: ParamSet %d incompatible with ParamSet 0", i)
		}
	}
	out := sets[0].Clone()
	for _, s := range sets[1:] {
		out.Add(s)
	}
	out.Scale(1 / float64(len(sets)))
	return out, nil
}

// WeightedAverage returns the weighted element-wise mean of the ParamSets
// (classic FedAvg weights updates by local dataset size). Note the design
// constraint this exposes: MixNN's aggregation equivalence (§4.2) holds
// only for the uniform mean — per-layer mixing permutes which participant
// a weight multiplies, so non-uniform weights break equivalence (see
// TestWeightedAverageBreaksUnderMixing in internal/core). Deployments
// using MixNN must therefore aggregate uniformly, as the paper assumes.
func WeightedAverage(sets []ParamSet, weights []float64) (ParamSet, error) {
	if len(sets) == 0 {
		return ParamSet{}, fmt.Errorf("nn: WeightedAverage of zero ParamSets")
	}
	if len(weights) != len(sets) {
		return ParamSet{}, fmt.Errorf("nn: %d weights for %d ParamSets", len(weights), len(sets))
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return ParamSet{}, fmt.Errorf("nn: negative weight %g", w)
		}
		total += w
	}
	if total == 0 {
		return ParamSet{}, fmt.Errorf("nn: weights sum to zero")
	}
	for i := 1; i < len(sets); i++ {
		if !sets[0].Compatible(sets[i]) {
			return ParamSet{}, fmt.Errorf("nn: WeightedAverage: ParamSet %d incompatible with ParamSet 0", i)
		}
	}
	out := sets[0].Clone().Scale(weights[0] / total)
	for i, s := range sets[1:] {
		out.AddScaled(s, weights[i+1]/total)
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
