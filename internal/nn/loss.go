package nn

import (
	"fmt"
	"math"

	"mixnn/internal/tensor"
)

// Softmax writes the row-wise softmax of logits into a new tensor. Rows are
// shifted by their max for numerical stability.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: Softmax requires rank 2, got %v", logits.Shape()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	out := logits.Clone()
	od := out.Data()
	for i := 0; i < n; i++ {
		row := od[i*c : (i+1)*c]
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - max)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return out
}

// CrossEntropyLoss returns the mean negative log-likelihood of the true
// labels under the row-wise probability distributions probs.
func CrossEntropyLoss(probs *tensor.Tensor, labels []int) float64 {
	n, c := probs.Dim(0), probs.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	const eps = 1e-12
	loss := 0.0
	for i, y := range labels {
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, c))
		}
		loss -= math.Log(probs.Data()[i*c+y] + eps)
	}
	return loss / float64(n)
}

// SoftmaxCrossEntropy fuses softmax and cross-entropy so that the backward
// pass is the numerically-stable (probs - onehot)/N.
type SoftmaxCrossEntropy struct{}

// Forward returns the mean loss and the softmax probabilities (needed by
// Backward and by accuracy computations).
func (SoftmaxCrossEntropy) Forward(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	probs := Softmax(logits)
	return CrossEntropyLoss(probs, labels), probs
}

// Backward returns the gradient of the mean loss with respect to the
// logits: (probs - onehot(labels)) / N.
func (SoftmaxCrossEntropy) Backward(probs *tensor.Tensor, labels []int) *tensor.Tensor {
	n, c := probs.Dim(0), probs.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	grad := probs.Clone()
	gd := grad.Data()
	inv := 1 / float64(n)
	for i, y := range labels {
		gd[i*c+y] -= 1
	}
	for i := range gd {
		gd[i] *= inv
	}
	return grad
}

// Accuracy returns the fraction of rows of logits (or probabilities — any
// monotone score works) whose argmax equals the label.
func Accuracy(scores *tensor.Tensor, labels []int) float64 {
	pred := scores.ArgMaxRows()
	if len(pred) != len(labels) {
		panic(fmt.Sprintf("nn: %d predictions for %d labels", len(pred), len(labels)))
	}
	if len(labels) == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
