package nn

import (
	"fmt"
	"math"

	"mixnn/internal/tensor"
)

// Optimizer updates parameters in place from their accumulated gradients.
// Implementations keep per-parameter state keyed by slice position, so an
// optimizer instance must always be used with the same network.
type Optimizer interface {
	// Step applies one update. params and grads are parallel slices.
	Step(params, grads []*tensor.Tensor)
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64

	vel []*tensor.Tensor
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

var _ Optimizer = (*SGD)(nil)

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	checkStep(params, grads)
	if s.Momentum == 0 {
		for i, p := range params {
			p.AddScaled(grads[i], -s.LR)
		}
		return
	}
	if s.vel == nil {
		s.vel = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.vel[i] = tensor.New(p.Shape()...)
		}
	}
	for i, p := range params {
		v := s.vel[i]
		v.Scale(s.Momentum).AddScaled(grads[i], -s.LR)
		p.Add(v)
	}
}

// Adam is the Adam optimizer (Kingma & Ba) — the optimizer used by the
// paper's experiments ("we use the Adam optimizer proposed by Tensorflow").
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	t    int
	m, v []*tensor.Tensor
}

// NewAdam constructs an Adam optimizer with the TensorFlow defaults
// (beta1=0.9, beta2=0.999, eps=1e-7) and the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-7}
}

var _ Optimizer = (*Adam)(nil)

// Step implements Optimizer.
func (a *Adam) Step(params, grads []*tensor.Tensor) {
	checkStep(params, grads)
	if a.m == nil {
		a.m = make([]*tensor.Tensor, len(params))
		a.v = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			a.m[i] = tensor.New(p.Shape()...)
			a.v[i] = tensor.New(p.Shape()...)
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		md, vd, gd, pd := a.m[i].Data(), a.v[i].Data(), grads[i].Data(), p.Data()
		for j, g := range gd {
			md[j] = a.Beta1*md[j] + (1-a.Beta1)*g
			vd[j] = a.Beta2*vd[j] + (1-a.Beta2)*g*g
			mHat := md[j] / bc1
			vHat := vd[j] / bc2
			pd[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

func checkStep(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("nn: optimizer got %d params but %d grads", len(params), len(grads)))
	}
}

// NewOptimizer constructs an optimizer by name ("sgd" or "adam"), matching
// the experiment configuration strings.
func NewOptimizer(name string, lr float64) (Optimizer, error) {
	switch name {
	case "sgd":
		return NewSGD(lr, 0), nil
	case "adam":
		return NewAdam(lr), nil
	default:
		return nil, fmt.Errorf("nn: unknown optimizer %q", name)
	}
}
