package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unsafe"

	"mixnn/internal/tensor"
)

// Binary wire format for ParamSet (little-endian):
//
//	magic   [4]byte  "MXPS"
//	version uint8    (1)
//	layers  uint32
//	per layer:
//	  nameLen uint16, name []byte
//	  tensors uint32
//	  per tensor:
//	    rank uint8, dims [rank]uint32, data [prod(dims)]float64
//
// The decoder validates structure against hard limits before allocating, so
// it is safe on untrusted input (the MixNN proxy decodes ciphertexts from
// arbitrary participants).
const (
	codecMagic   = "MXPS"
	codecVersion = 1

	// maxDecode* bound allocations while decoding untrusted input.
	maxDecodeLayers        = 4096
	maxDecodeTensors       = 256
	maxDecodeRank          = 8
	maxDecodeTotalElements = 1 << 26 // 64M scalars = 512 MiB of float64
)

// EncodedSize returns the exact number of bytes EncodeParamSet will emit.
func EncodedSize(ps ParamSet) int {
	n := 4 + 1 + 4
	for _, lp := range ps.Layers {
		n += 2 + len(lp.Name) + 4
		for _, t := range lp.Tensors {
			n += 1 + 4*t.Rank() + 8*t.Size()
		}
	}
	return n
}

// EncodeParamSet serialises ps into the binary wire format.
func EncodeParamSet(ps ParamSet) ([]byte, error) {
	return AppendParamSet(make([]byte, 0, EncodedSize(ps)), ps)
}

// AppendParamSet serialises ps into the binary wire format, appending to
// buf and returning the extended slice. It is the allocation-conscious
// sibling of EncodeParamSet: the round-close packaging encodes a whole
// round of updates back-to-back into ONE reused buffer, so per-update
// encode cost is a bulk byte copy instead of a bytes.Buffer plus a
// scratch slice per tensor.
func AppendParamSet(buf []byte, ps ParamSet) ([]byte, error) {
	buf = append(buf, codecMagic...)
	buf = append(buf, codecVersion)
	buf = appendU32(buf, uint32(len(ps.Layers)))
	for _, lp := range ps.Layers {
		if len(lp.Name) > math.MaxUint16 {
			return nil, fmt.Errorf("nn: layer name %q too long", lp.Name[:32])
		}
		buf = append(buf, byte(len(lp.Name)), byte(len(lp.Name)>>8))
		buf = append(buf, lp.Name...)
		buf = appendU32(buf, uint32(len(lp.Tensors)))
		for _, t := range lp.Tensors {
			// Rank/Dim instead of Shape(): the defensive shape copy was one
			// allocation per tensor, which dominated the whole encode.
			rank := t.Rank()
			buf = append(buf, byte(rank))
			for i := 0; i < rank; i++ {
				buf = appendU32(buf, uint32(t.Dim(i)))
			}
			data := t.Data()
			if hostLittleEndian && len(data) > 0 {
				// The host representation already IS the wire payload;
				// viewing the floats as bytes (alignment 1) is always legal.
				buf = append(buf, unsafe.Slice((*byte)(unsafe.Pointer(&data[0])), 8*len(data))...)
			} else {
				for _, v := range data {
					bits := math.Float64bits(v)
					buf = append(buf, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
						byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
				}
			}
		}
	}
	return buf, nil
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// WriteParamSet streams the encoding of ps to w.
func WriteParamSet(w io.Writer, ps ParamSet) error {
	if _, err := w.Write([]byte(codecMagic)); err != nil {
		return fmt.Errorf("nn: write magic: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint8(codecVersion)); err != nil {
		return fmt.Errorf("nn: write version: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ps.Layers))); err != nil {
		return fmt.Errorf("nn: write layer count: %w", err)
	}
	for _, lp := range ps.Layers {
		if len(lp.Name) > math.MaxUint16 {
			return fmt.Errorf("nn: layer name %q too long", lp.Name[:32])
		}
		if err := binary.Write(w, binary.LittleEndian, uint16(len(lp.Name))); err != nil {
			return fmt.Errorf("nn: write name length: %w", err)
		}
		if _, err := w.Write([]byte(lp.Name)); err != nil {
			return fmt.Errorf("nn: write name: %w", err)
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(lp.Tensors))); err != nil {
			return fmt.Errorf("nn: write tensor count: %w", err)
		}
		for _, t := range lp.Tensors {
			if err := writeTensor(w, t); err != nil {
				return fmt.Errorf("nn: layer %q: %w", lp.Name, err)
			}
		}
	}
	return nil
}

func writeTensor(w io.Writer, t *tensor.Tensor) error {
	shape := t.Shape()
	if err := binary.Write(w, binary.LittleEndian, uint8(len(shape))); err != nil {
		return fmt.Errorf("write rank: %w", err)
	}
	for _, d := range shape {
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return fmt.Errorf("write dim: %w", err)
		}
	}
	// Bulk-encode the float64 payload.
	data := t.Data()
	raw := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	if _, err := w.Write(raw); err != nil {
		return fmt.Errorf("write data: %w", err)
	}
	return nil
}

// DecodeParamSet parses the binary wire format produced by EncodeParamSet.
func DecodeParamSet(data []byte) (ParamSet, error) {
	return ReadParamSet(bytes.NewReader(data))
}

// ReadParamSet streams a ParamSet from r, validating structural limits
// before allocating.
func ReadParamSet(r io.Reader) (ParamSet, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return ParamSet{}, fmt.Errorf("nn: read magic: %w", err)
	}
	if string(magic[:]) != codecMagic {
		return ParamSet{}, fmt.Errorf("nn: bad magic %q", magic)
	}
	var version uint8
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return ParamSet{}, fmt.Errorf("nn: read version: %w", err)
	}
	if version != codecVersion {
		return ParamSet{}, fmt.Errorf("nn: unsupported codec version %d", version)
	}
	var layerCount uint32
	if err := binary.Read(r, binary.LittleEndian, &layerCount); err != nil {
		return ParamSet{}, fmt.Errorf("nn: read layer count: %w", err)
	}
	if layerCount > maxDecodeLayers {
		return ParamSet{}, fmt.Errorf("nn: layer count %d exceeds limit %d", layerCount, maxDecodeLayers)
	}
	totalElems := 0
	ps := ParamSet{Layers: make([]LayerParams, 0, layerCount)}
	for li := uint32(0); li < layerCount; li++ {
		var nameLen uint16
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return ParamSet{}, fmt.Errorf("nn: read name length: %w", err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return ParamSet{}, fmt.Errorf("nn: read name: %w", err)
		}
		var tensorCount uint32
		if err := binary.Read(r, binary.LittleEndian, &tensorCount); err != nil {
			return ParamSet{}, fmt.Errorf("nn: read tensor count: %w", err)
		}
		if tensorCount > maxDecodeTensors {
			return ParamSet{}, fmt.Errorf("nn: tensor count %d exceeds limit %d", tensorCount, maxDecodeTensors)
		}
		lp := LayerParams{Name: string(name), Tensors: make([]*tensor.Tensor, 0, tensorCount)}
		for ti := uint32(0); ti < tensorCount; ti++ {
			t, n, err := readTensor(r, maxDecodeTotalElements-totalElems)
			if err != nil {
				return ParamSet{}, fmt.Errorf("nn: layer %q tensor %d: %w", lp.Name, ti, err)
			}
			totalElems += n
			lp.Tensors = append(lp.Tensors, t)
		}
		ps.Layers = append(ps.Layers, lp)
	}
	return ps, nil
}

func readTensor(r io.Reader, remainingBudget int) (*tensor.Tensor, int, error) {
	var rank uint8
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return nil, 0, fmt.Errorf("read rank: %w", err)
	}
	if rank == 0 || rank > maxDecodeRank {
		return nil, 0, fmt.Errorf("rank %d outside [1,%d]", rank, maxDecodeRank)
	}
	shape := make([]int, rank)
	elems := 1
	for i := range shape {
		var d uint32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return nil, 0, fmt.Errorf("read dim: %w", err)
		}
		if d == 0 {
			return nil, 0, fmt.Errorf("zero dimension")
		}
		if elems > remainingBudget/int(d) {
			return nil, 0, fmt.Errorf("tensor exceeds element budget")
		}
		elems *= int(d)
		shape[i] = int(d)
	}
	raw := make([]byte, 8*elems)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, 0, fmt.Errorf("read data: %w", err)
	}
	data := make([]float64, elems)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	t, err := tensor.FromSlice(data, shape...)
	if err != nil {
		return nil, 0, err
	}
	return t, elems, nil
}
