package nn

import (
	"fmt"
	"math"

	"mixnn/internal/tensor"
)

// MaxPool2D is a channel-wise max pooling layer over CHW inputs with a
// (possibly rectangular) KH×KW window and stride equal to the window
// (non-overlapping), the configuration used by the paper's architectures.
// Rectangular windows let the motion-sensor models pool along time only.
type MaxPool2D struct {
	name          string
	c, h, w       int
	kh, kw        int
	outH, outW    int
	cacheArgmax   []int // flat input index chosen per output element, batch-major
	cacheBatchLen int
}

// NewMaxPool2D constructs a square max-pooling layer (window k×k).
func NewMaxPool2D(name string, c, h, w, k int) *MaxPool2D {
	return NewMaxPool2DRect(name, c, h, w, k, k)
}

// NewMaxPool2DRect constructs a max-pooling layer with window kh×kw.
// Input dims must be divisible by the window dims.
func NewMaxPool2DRect(name string, c, h, w, kh, kw int) *MaxPool2D {
	if c <= 0 || h <= 0 || w <= 0 || kh <= 0 || kw <= 0 {
		panic(fmt.Sprintf("nn: MaxPool2D %q has non-positive dims", name))
	}
	if h%kh != 0 || w%kw != 0 {
		panic(fmt.Sprintf("nn: MaxPool2D %q input %dx%d not divisible by window %dx%d", name, h, w, kh, kw))
	}
	return &MaxPool2D{name: name, c: c, h: h, w: w, kh: kh, kw: kw, outH: h / kh, outW: w / kw}
}

var _ Layer = (*MaxPool2D)(nil)

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.name }

// InDim returns the flat input width.
func (p *MaxPool2D) InDim() int { return p.c * p.h * p.w }

// OutDim returns the flat output width.
func (p *MaxPool2D) OutDim() int { return p.c * p.outH * p.outW }

// OutH returns the pooled height.
func (p *MaxPool2D) OutH() int { return p.outH }

// OutW returns the pooled width.
func (p *MaxPool2D) OutW() int { return p.outW }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	inDim := p.InDim()
	if x.Rank() != 2 || x.Dim(1) != inDim {
		panic(fmt.Sprintf("nn: MaxPool2D %q expects [N,%d], got %v", p.name, inDim, x.Shape()))
	}
	n := x.Dim(0)
	outDim := p.OutDim()
	y := tensor.New(n, outDim)
	if train {
		p.cacheArgmax = make([]int, n*outDim)
		p.cacheBatchLen = n
	}
	xd, yd := x.Data(), y.Data()
	for i := 0; i < n; i++ {
		in := xd[i*inDim : (i+1)*inDim]
		out := yd[i*outDim : (i+1)*outDim]
		oi := 0
		for c := 0; c < p.c; c++ {
			chn := in[c*p.h*p.w : (c+1)*p.h*p.w]
			for oh := 0; oh < p.outH; oh++ {
				for ow := 0; ow < p.outW; ow++ {
					best := math.Inf(-1)
					bestIdx := 0
					for dh := 0; dh < p.kh; dh++ {
						row := (oh*p.kh + dh) * p.w
						for dw := 0; dw < p.kw; dw++ {
							idx := row + ow*p.kw + dw
							if chn[idx] > best {
								best = chn[idx]
								bestIdx = c*p.h*p.w + idx
							}
						}
					}
					out[oi] = best
					if train {
						p.cacheArgmax[i*outDim+oi] = bestIdx
					}
					oi++
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.cacheArgmax == nil {
		panic(fmt.Sprintf("nn: MaxPool2D %q Backward without training Forward", p.name))
	}
	n := grad.Dim(0)
	if n != p.cacheBatchLen {
		panic(fmt.Sprintf("nn: MaxPool2D %q gradient batch %d does not match cached batch %d", p.name, n, p.cacheBatchLen))
	}
	inDim, outDim := p.InDim(), p.OutDim()
	dx := tensor.New(n, inDim)
	gd, dd := grad.Data(), dx.Data()
	for i := 0; i < n; i++ {
		for oi := 0; oi < outDim; oi++ {
			dd[i*inDim+p.cacheArgmax[i*outDim+oi]] += gd[i*outDim+oi]
		}
	}
	return dx
}

// Params implements Layer (stateless).
func (p *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer (stateless).
func (p *MaxPool2D) Grads() []*tensor.Tensor { return nil }
