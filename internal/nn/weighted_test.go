package nn

import (
	"math/rand"
	"testing"

	"mixnn/internal/tensor"
)

func TestWeightedAverageKnownValues(t *testing.T) {
	a := ParamSet{Layers: []LayerParams{{Name: "l", Tensors: []*tensor.Tensor{tensor.MustFromSlice([]float64{0, 0}, 2)}}}}
	b := ParamSet{Layers: []LayerParams{{Name: "l", Tensors: []*tensor.Tensor{tensor.MustFromSlice([]float64{4, 8}, 2)}}}}
	got, err := WeightedAverage([]ParamSet{a, b}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := ParamSet{Layers: []LayerParams{{Name: "l", Tensors: []*tensor.Tensor{tensor.MustFromSlice([]float64{1, 2}, 2)}}}}
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("WeightedAverage = %+v", got)
	}
}

func TestWeightedAverageUniformMatchesAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sets := []ParamSet{randomParamSet(rng, 3), randomParamSet(rng, 3), randomParamSet(rng, 3)}
	for i := 1; i < 3; i++ {
		sets[i].Layers[0].Name = sets[0].Layers[0].Name
	}
	plain, err := Average(sets)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := WeightedAverage(sets, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.ApproxEqual(weighted, 1e-12) {
		t.Fatal("uniform WeightedAverage != Average")
	}
}

func TestWeightedAverageErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomParamSet(rng, 2)
	tests := []struct {
		name    string
		sets    []ParamSet
		weights []float64
	}{
		{"empty", nil, nil},
		{"count mismatch", []ParamSet{a}, []float64{1, 2}},
		{"negative weight", []ParamSet{a}, []float64{-1}},
		{"zero sum", []ParamSet{a}, []float64{0}},
		{"incompatible", []ParamSet{a, randomParamSet(rng, 3)}, []float64{1, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := WeightedAverage(tt.sets, tt.weights); err == nil {
				t.Fatal("no error")
			}
		})
	}
}
