package client_test

import (
	"context"
	"encoding/hex"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"mixnn/internal/client"
	"mixnn/internal/enclave"
	"mixnn/internal/transport"
	"mixnn/internal/wire"
)

// ctrlServer is the typed server fixture for control-plane SDK tests:
// real attestation (a shared platform, one enclave per endpoint) so a
// single Participant can pin keys for several endpoints through the
// normal handshake, a scripted discovery advertisement, and an update
// handler that refuses the first N sends with a scripted rejection
// before accepting.
type ctrlServer struct {
	platform *enclave.Platform
	encl     *enclave.Enclave

	mu        sync.Mutex
	updates   int
	attempts  int
	failFirst int
	failErr   error
	discover  wire.DiscoverResponse
	discErr   error
}

func (s *ctrlServer) HandleUpdate(ctx context.Context, req transport.UpdateRequest) (transport.Receipt, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attempts++
	if s.failFirst > 0 {
		s.failFirst--
		return transport.Receipt{Shard: -1}, s.failErr
	}
	s.updates++
	return transport.Receipt{Shard: 0}, nil
}
func (s *ctrlServer) HandleAttest(ctx context.Context, nonce []byte) (wire.AttestationResponse, error) {
	rep, err := s.platform.Attest(s.encl, nonce)
	if err != nil {
		return wire.AttestationResponse{}, err
	}
	return wire.AttestationResponse{
		MeasurementHex: hex.EncodeToString(rep.Measurement[:]),
		NonceHex:       hex.EncodeToString(rep.Nonce),
		PubKeyDER:      rep.PubKeyDER,
		Signature:      rep.Signature,
	}, nil
}
func (s *ctrlServer) HandleDiscover(ctx context.Context) (wire.DiscoverResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.discover, s.discErr
}

// setHealth rescripts the endpoint's advertisement, as a live proxy
// would when its load changes.
func (s *ctrlServer) setHealth(h float64, shedding bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.discover.Health = h
	s.discover.Shedding = shedding
}

func (s *ctrlServer) counts() (updates, attempts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.updates, s.attempts
}

func (s *ctrlServer) HandleHop(ctx context.Context, req transport.HopRequest) (transport.Receipt, error) {
	return transport.Receipt{Shard: -1}, transport.ErrNotSupported
}
func (s *ctrlServer) HandleBatch(ctx context.Context, req transport.BatchRequest) (transport.Receipt, error) {
	return transport.Receipt{Shard: -1}, transport.ErrNotSupported
}
func (s *ctrlServer) HandleModel(ctx context.Context) (transport.ModelResponse, error) {
	return transport.ModelResponse{}, transport.ErrNotSupported
}
func (s *ctrlServer) HandleTopology(ctx context.Context, req transport.TopologyRequest) (wire.TopologyStatus, error) {
	return wire.TopologyStatus{}, transport.ErrNotSupported
}
func (s *ctrlServer) HandleStatus(ctx context.Context) (transport.StatusResponse, error) {
	return transport.StatusResponse{}, transport.ErrNotSupported
}

// ctrlTier builds n ctrlServers on one platform (same measurement, so
// one trust bundle attests them all) registered as loop://front-0..n-1.
func ctrlTier(t *testing.T, lb *transport.Loopback, n int) (*enclave.Platform, []*ctrlServer) {
	t.Helper()
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*ctrlServer, n)
	for i := range servers {
		encl, err := enclave.New(enclave.Config{RSABits: 1024}, platform)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = &ctrlServer{platform: platform, encl: encl}
		lb.Register(frontEP(i), servers[i])
	}
	return platform, servers
}

func frontEP(i int) string {
	return "loop://front-" + string(rune('0'+i))
}

func tooMany(retryAfter time.Duration) *transport.StatusError {
	return &transport.StatusError{
		Code:       http.StatusTooManyRequests,
		RetryAfter: retryAfter,
		Msg:        "over rate budget",
	}
}

// TestSendUpdate429FailsOver pins the admission contract on the walk:
// a 429 from the primary is endpoint-specific (that proxy's gate
// refused before ingesting anything), NOT material — the send must
// fail over to the next proxy and succeed there, never surface the
// 429 as a permanent rejection.
func TestSendUpdate429FailsOver(t *testing.T) {
	lb := transport.NewLoopback()
	platform, servers := ctrlTier(t, lb, 2)
	servers[0].failFirst = 1 << 30 // primary sheds forever
	servers[0].failErr = tooMany(time.Second)
	p, err := client.New(client.Config{
		Proxies:   []string{frontEP(0), frontEP(1)},
		Transport: lb,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := p.Attest(ctx, platform.AttestationPublicKey(), servers[0].encl.Measurement()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := p.SendUpdate(ctx, testUpdate()); err != nil {
		t.Fatalf("429 at the primary must fail over, got: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("failover took %v; the walk must not sleep on the primary's Retry-After when a fallback accepted", elapsed)
	}
	if u, _ := servers[0].counts(); u != 0 {
		t.Fatalf("shedding primary ingested %d updates, want 0", u)
	}
	if u, _ := servers[1].counts(); u != 1 {
		t.Fatalf("fallback saw %d updates, want 1", u)
	}
}

// TestSendUpdate429RetryAfterThenRecovers: when EVERY proxy answers
// 429, the walk provably ingested nothing, so the SDK must honour the
// Retry-After hint — wait at least that long — and retry until the
// tier admits the update, rather than returning the transient
// rejection to the caller.
func TestSendUpdate429RetryAfterThenRecovers(t *testing.T) {
	const hint = 20 * time.Millisecond
	lb := transport.NewLoopback()
	platform, servers := ctrlTier(t, lb, 1)
	servers[0].failFirst = 2
	servers[0].failErr = tooMany(hint)
	p, err := client.New(client.Config{Proxies: []string{frontEP(0)}, Transport: lb})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := p.Attest(ctx, platform.AttestationPublicKey(), servers[0].encl.Measurement()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := p.SendUpdate(ctx, testUpdate()); err != nil {
		t.Fatalf("an all-429 walk must retry after the hint, got: %v", err)
	}
	elapsed := time.Since(start)
	if u, a := servers[0].counts(); u != 1 || a != 3 {
		t.Fatalf("got %d updates over %d attempts, want exactly 1 over 3 (two 429s, one acceptance)", u, a)
	}
	// Two refused walks → two waits of at least one hint each. An SDK
	// ignoring Retry-After would come back after its own ~1-3ms backoff
	// and finish far under this bound.
	if elapsed < 2*hint {
		t.Fatalf("recovered in %v, want >= %v: the Retry-After hint was not honoured", elapsed, 2*hint)
	}
}

// TestSendUpdate429RespectsContext: the 429 retry loop is bounded by
// ctx like the busy loop — a caller's deadline must cut the waiting.
func TestSendUpdate429RespectsContext(t *testing.T) {
	lb := transport.NewLoopback()
	platform, servers := ctrlTier(t, lb, 1)
	servers[0].failFirst = 1 << 30
	servers[0].failErr = tooMany(time.Hour)
	p, err := client.New(client.Config{Proxies: []string{frontEP(0)}, Transport: lb})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Attest(context.Background(), platform.AttestationPublicKey(), servers[0].encl.Measurement()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.SendUpdate(ctx, testUpdate()); err == nil {
		t.Fatal("a permanently rate-limited tier must surface an error once ctx expires")
	}
	if u, _ := servers[0].counts(); u != 0 {
		t.Fatalf("rate-limited proxy ingested %d updates, want 0", u)
	}
}

// TestDiscoverBootstrapsFromSeed: a participant configured with ONE
// seed endpoint learns the full front list from the seed's
// advertisement (transitively) and ranks it healthiest-first; after
// one front degrades, the next sweep demotes it. This is the
// self-healing loop of the control plane: operators hand out one
// endpoint, the tier advertises the rest.
func TestDiscoverBootstrapsFromSeed(t *testing.T) {
	lb := transport.NewLoopback()
	_, servers := ctrlTier(t, lb, 3)
	peers := []string{frontEP(0), frontEP(1), frontEP(2)}
	for i, s := range servers {
		s.discover = wire.DiscoverResponse{
			Endpoint: frontEP(i),
			Peers:    peers,
		}
	}
	servers[0].setHealth(0.5, false)
	servers[1].setHealth(0.9, false)
	servers[2].setHealth(0.7, false)

	p, err := client.New(client.Config{Proxies: []string{frontEP(0)}, Transport: lb})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := p.Discover(ctx); err != nil {
		t.Fatal(err)
	}
	want := []string{frontEP(1), frontEP(2), frontEP(0)}
	if got := p.Proxies(); !reflect.DeepEqual(got, want) {
		t.Fatalf("bootstrap from one seed: got %v, want %v (ranked by health)", got, want)
	}

	// front-1 starts shedding: its advertised health collapses below
	// every non-shedding front's, and the next sweep demotes it to the
	// tail of the failover list.
	servers[1].setHealth(0.08, true)
	if err := p.Discover(ctx); err != nil {
		t.Fatal(err)
	}
	want = []string{frontEP(2), frontEP(0), frontEP(1)}
	if got := p.Proxies(); !reflect.DeepEqual(got, want) {
		t.Fatalf("after front-1 degraded: got %v, want %v", got, want)
	}
}

// TestDiscoverKeepsListWhenTierUnreachable: a sweep that reaches no
// endpoint must not clobber the configured list — an empty sweep means
// the network is broken, not that the fronts vanished.
func TestDiscoverKeepsListWhenTierUnreachable(t *testing.T) {
	lb := transport.NewLoopback() // nothing registered
	p, err := client.New(client.Config{Proxies: []string{"loop://a", "loop://b"}, Transport: lb})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Discover(context.Background()); err == nil {
		t.Fatal("an all-unreachable sweep must return an error")
	}
	if got, want := p.Proxies(), []string{"loop://a", "loop://b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("failed sweep rewrote the list: got %v, want %v", got, want)
	}
}

// TestDiscoverNeutralOnPreDiscoveryProxy: an endpoint without a
// discovery surface (404/ErrNotSupported — an older proxy) scores
// neutral and keeps its configured position; discovery must not
// penalise a deployment that simply predates it.
func TestDiscoverNeutralOnPreDiscoveryProxy(t *testing.T) {
	lb := transport.NewLoopback()
	lb.Register("loop://old-a", &recordingServer{}) // HandleDiscover → ErrNotSupported
	lb.Register("loop://old-b", &recordingServer{})
	p, err := client.New(client.Config{Proxies: []string{"loop://old-a", "loop://old-b"}, Transport: lb})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Discover(context.Background()); err != nil {
		t.Fatalf("a reachable pre-discovery tier must not fail the sweep: %v", err)
	}
	if got, want := p.Proxies(), []string{"loop://old-a", "loop://old-b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("pre-discovery tier reordered: got %v, want %v (configured order)", got, want)
	}
}

// TestDiscoveryConcurrentWithSends drives StartDiscovery's refresh
// loop while sends walk the list — the snapshot discipline must hold
// under the race detector.
func TestDiscoveryConcurrentWithSends(t *testing.T) {
	lb := transport.NewLoopback()
	platform, servers := ctrlTier(t, lb, 2)
	peers := []string{frontEP(0), frontEP(1)}
	for i, s := range servers {
		s.discover = wire.DiscoverResponse{Endpoint: frontEP(i), Peers: peers, Health: 0.5}
	}
	p, err := client.New(client.Config{Proxies: []string{frontEP(0)}, Transport: lb})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.Attest(ctx, platform.AttestationPublicKey(), servers[0].encl.Measurement()); err != nil {
		t.Fatal(err)
	}
	p.StartDiscovery(ctx, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := p.SendUpdate(ctx, testUpdate()); err != nil {
					t.Errorf("sender %d: %v", g, err)
					return
				}
				servers[g%2].setHealth(float64(i)/10, i%2 == 0)
			}
		}(g)
	}
	wg.Wait()
	ua, _ := servers[0].counts()
	ub, _ := servers[1].counts()
	if ua+ub != 20 {
		t.Fatalf("tier ingested %d updates, want 20 (none lost or duplicated across re-ranks)", ua+ub)
	}
}
