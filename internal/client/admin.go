package client

import (
	"context"

	"mixnn/internal/transport"
	"mixnn/internal/wire"
)

// Admin is the operator sub-client for one proxy's routing-plane admin
// surface: it reads the current (and staged) topology and stages
// directives — reshaping the shard set, switching routing policy,
// reweighting quotas, attaching remote shards, and (with SyncPeers)
// driving a remote shard's quota AND the peer's own round size in one
// step. Directives apply at the proxy's next round close (immediately
// when the tier is idle).
type Admin struct {
	tr     transport.Transport
	ep     string
	secret string
}

// NewAdmin builds an admin sub-client for a proxy endpoint. secret is
// the tier's inter-proxy secret; staging over the network requires the
// proxy to run with one.
func NewAdmin(tr transport.Transport, endpoint, secret string) *Admin {
	if tr == nil {
		tr = transport.NewHTTP(nil)
	}
	return &Admin{tr: tr, ep: endpoint, secret: secret}
}

// Topology reads the proxy's current routing plane (including any
// staged-but-not-yet-applied plan).
func (a *Admin) Topology(ctx context.Context) (wire.TopologyStatus, error) {
	return a.tr.Topology(ctx, a.ep, transport.TopologyRequest{Secret: a.secret})
}

// Stage validates and stages a topology directive on the proxy and
// returns the resulting routing-plane view. With d.SyncPeers set the
// proxy also drives every remote shard's own round size to its new
// quota before staging completes, so one call reshapes both ends of
// every relay leg in the same epoch.
func (a *Admin) Stage(ctx context.Context, d wire.TopologyDirective) (wire.TopologyStatus, error) {
	return a.tr.Topology(ctx, a.ep, transport.TopologyRequest{Directive: &d, Secret: a.secret})
}

// Status fetches the proxy's tier status.
func (a *Admin) Status(ctx context.Context) (wire.ShardedProxyStatus, error) {
	return proxyStatus(ctx, a.tr, a.ep)
}
