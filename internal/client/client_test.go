package client_test

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"net/http"
	"testing"

	"mixnn/internal/client"
	"mixnn/internal/nn"
	"mixnn/internal/transport"
	"mixnn/internal/wire"
)

// recordingServer is a minimal typed server for SDK unit tests: it
// records ingress and answers with a scripted result.
type recordingServer struct {
	updates int
	err     error
}

func (r *recordingServer) HandleUpdate(ctx context.Context, req transport.UpdateRequest) (transport.Receipt, error) {
	if r.err != nil {
		return transport.Receipt{Shard: -1}, r.err
	}
	r.updates++
	return transport.Receipt{Shard: 0}, nil
}
func (r *recordingServer) HandleHop(ctx context.Context, req transport.HopRequest) (transport.Receipt, error) {
	return transport.Receipt{Shard: -1}, transport.ErrNotSupported
}
func (r *recordingServer) HandleBatch(ctx context.Context, req transport.BatchRequest) (transport.Receipt, error) {
	return transport.Receipt{Shard: -1}, transport.ErrNotSupported
}
func (r *recordingServer) HandleAttest(ctx context.Context, nonce []byte) (wire.AttestationResponse, error) {
	return wire.AttestationResponse{}, transport.ErrNotSupported
}
func (r *recordingServer) HandleModel(ctx context.Context) (transport.ModelResponse, error) {
	return transport.ModelResponse{}, transport.ErrNotSupported
}
func (r *recordingServer) HandleTopology(ctx context.Context, req transport.TopologyRequest) (wire.TopologyStatus, error) {
	return wire.TopologyStatus{}, transport.ErrNotSupported
}
func (r *recordingServer) HandleStatus(ctx context.Context) (transport.StatusResponse, error) {
	return transport.StatusResponse{}, transport.ErrNotSupported
}
func (r *recordingServer) HandleDiscover(ctx context.Context) (wire.DiscoverResponse, error) {
	return wire.DiscoverResponse{}, transport.ErrNotSupported
}

func testUpdate() nn.ParamSet {
	return nn.NewMLP("net", 4, []int{6}, 2).New(1).SnapshotParams()
}

func testKey(t *testing.T) *rsa.PublicKey {
	t.Helper()
	key, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		t.Fatal(err)
	}
	return &key.PublicKey
}

func TestNewRequiresProxies(t *testing.T) {
	if _, err := client.New(client.Config{Server: "loop://agg"}); err == nil {
		t.Fatal("New must refuse a config without proxies")
	}
}

func TestSendUpdateRequiresTrust(t *testing.T) {
	lb := transport.NewLoopback()
	p, err := client.New(client.Config{Proxies: []string{"loop://px"}, Transport: lb})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SendUpdate(context.Background(), testUpdate()); err == nil {
		t.Fatal("SendUpdate without trust or a pinned key must fail")
	}
}

func TestSendUpdatePinnedKey(t *testing.T) {
	lb := transport.NewLoopback()
	srv := &recordingServer{}
	lb.Register("loop://px", srv)
	p, err := client.New(client.Config{Proxies: []string{"loop://px"}, Transport: lb})
	if err != nil {
		t.Fatal(err)
	}
	p.SetEnclaveKey(testKey(t))
	if err := p.SendUpdate(context.Background(), testUpdate()); err != nil {
		t.Fatal(err)
	}
	if srv.updates != 1 {
		t.Fatalf("server saw %d updates, want 1", srv.updates)
	}
}

// TestSendUpdateNoFailoverOnRejection: a definitive 4xx from the first
// proxy is returned immediately — every proxy would reject the same
// material, and the primary provably did not ingest it, so trying the
// next proxy could only duplicate a future accepted send.
func TestSendUpdateNoFailoverOnRejection(t *testing.T) {
	lb := transport.NewLoopback()
	a := &recordingServer{err: &transport.StatusError{Code: http.StatusBadRequest, Msg: "decode"}}
	b := &recordingServer{}
	lb.Register("loop://a", a)
	lb.Register("loop://b", b)
	p, err := client.New(client.Config{Proxies: []string{"loop://a", "loop://b"}, Transport: lb})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t)
	p.SetEnclaveKey(key) // pins loop://a (the primary)
	if err := p.SendUpdate(context.Background(), testUpdate()); err == nil {
		t.Fatal("definitive rejection must surface as an error")
	}
	if b.updates != 0 {
		t.Fatal("a definitive 4xx must NOT fail over to the next proxy")
	}
}

// TestSendUpdateNoFailoverOnGatewayAmbiguity: 502/504 conventionally
// come from an intermediary whose backend may have ingested the update
// before the gateway gave up — the SDK must stop rather than risk
// double-counting the participant on another proxy.
func TestSendUpdateNoFailoverOnGatewayAmbiguity(t *testing.T) {
	for _, code := range []int{http.StatusBadGateway, http.StatusGatewayTimeout} {
		lb := transport.NewLoopback()
		a := &recordingServer{err: &transport.StatusError{Code: code, Msg: http.StatusText(code)}}
		b := &recordingServer{}
		lb.Register("loop://a", a)
		lb.Register("loop://b", b)
		p, err := client.New(client.Config{Proxies: []string{"loop://a", "loop://b"}, Transport: lb})
		if err != nil {
			t.Fatal(err)
		}
		p.SetEnclaveKey(testKey(t))
		if err := p.SendUpdate(context.Background(), testUpdate()); err == nil {
			t.Fatalf("%d must surface as an error", code)
		}
		if b.updates != 0 {
			t.Fatalf("a %d must NOT fail over (backend may have ingested)", code)
		}
	}
}

// TestSendUpdateFailsOverOnTransportError: an unreachable primary is
// skipped. The second proxy has no pinned key and no trust material is
// configured, so the walk records both failures and reports them.
func TestSendUpdateFailoverWalk(t *testing.T) {
	lb := transport.NewLoopback()
	b := &recordingServer{}
	lb.Register("loop://b", b) // loop://a intentionally unregistered
	p, err := client.New(client.Config{Proxies: []string{"loop://a", "loop://b"}, Transport: lb})
	if err != nil {
		t.Fatal(err)
	}
	p.SetEnclaveKey(testKey(t)) // pins loop://a only
	err = p.SendUpdate(context.Background(), testUpdate())
	if err == nil {
		t.Fatal("send must fail when no reachable proxy has a key")
	}
	// Now pin b's key out of band too (a deployment distributing keys
	// alongside trust bundles): the same walk succeeds on the fallback.
	p2, err := client.New(client.Config{Proxies: []string{"loop://b"}, Transport: lb})
	if err != nil {
		t.Fatal(err)
	}
	p2.SetEnclaveKey(testKey(t))
	if err := p2.SendUpdate(context.Background(), testUpdate()); err != nil {
		t.Fatal(err)
	}
	if b.updates != 1 {
		t.Fatalf("fallback proxy saw %d updates, want 1", b.updates)
	}
}
