// Package client is the participant SDK: the component behind the
// paper's "users have only to configure its system to use a proxy",
// grown into an API a real deployment can hold onto. A Participant is a
// session handle onto the MixNN deployment: it discovers and attests
// the mixing tier's enclave, holds an ORDERED FAILOVER LIST of proxy
// endpoints, encrypts each round's update for the enclave it attested,
// and sends with retry semantics that respect the tier's protocol (202
// acknowledges acceptance into the tier; definitive 4xx rejections are
// permanent and never failed over; transport failures and 5xx answers
// fail over to the next proxy). An Admin sub-client drives the
// routing-plane directives of PR 4's admin surface through the same
// typed transport.
//
// Every leg goes through a transport.Transport, so the same Participant
// drives a networked deployment (HTTP) or an in-process one (Loopback)
// unchanged.
package client

import (
	"context"
	"crypto/ecdsa"
	"crypto/rsa"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/nn"
	"mixnn/internal/transport"
	"mixnn/internal/wire"
)

// Config parameterises a Participant session.
type Config struct {
	// Proxies is the ordered failover list of mixing-tier endpoints:
	// sends try them in order until one accepts. At least one is
	// required.
	Proxies []string
	// Server is the aggregation server endpoint (model fetches).
	Server string
	// Transport carries every leg; nil = the HTTP transport.
	Transport transport.Transport
	// ClientID is the pseudonymous id sent with each update. A sharded
	// proxy uses it for sticky shard routing, so a participant's updates
	// always meet the same mixing buffer; without it routing falls back
	// to the tier's anonymous policy.
	ClientID string
	// Authority and Measurement pin the attestation trust: the
	// (simulated) authority key and the expected enclave measurement
	// every proxy on the failover list must attest to. They may instead
	// be supplied through Attest.
	Authority   *ecdsa.PublicKey
	Measurement [32]byte
	// DisableSessions reverts the send path to the legacy one-shot
	// hybrid wrap (a fresh RSA-wrapped key per update) instead of the
	// default per-endpoint crypto session. The session path costs one
	// RSA wrap per session instead of one per update; the knob exists
	// for comparison runs and as an escape hatch against pre-session
	// proxies' error vocabulary (ingestion itself is compatible both
	// ways).
	DisableSessions bool
}

// Participant is the participant-side session handle. It is safe for
// concurrent use.
type Participant struct {
	tr     transport.Transport
	server string

	mu sync.Mutex
	// proxies is the ordered failover list. It starts as the configured
	// static list and is REPLACED by Discover: bootstrapped to the full
	// peer set learned from one seed and re-ranked by observed health.
	// Every reader takes a snapshot under mu (proxySnapshot/primary).
	proxies     []string
	clientID    string
	authority   *ecdsa.PublicKey
	measurement [32]byte
	// keys holds the attested (or pinned) enclave encryption key per
	// proxy endpoint; failover re-encrypts for the endpoint it lands on.
	keys map[string]*rsa.PublicKey
	// sessions holds the established crypto session per proxy endpoint,
	// next to the key it was built for: steady-state sends are GCM-only
	// under the session key, and the one-time RSA wrap rides the
	// session's first update (see enclave.Session). A session built for
	// a superseded key (the endpoint re-attested) is replaced lazily.
	sessions   map[string]*clientSession
	noSessions bool
	// flights single-flights the lazy failover attestation per endpoint:
	// when many goroutines share one client and fail over simultaneously
	// (a primary dying under load), exactly one runs the handshake and
	// the rest wait on its result instead of stampeding the fallback
	// proxy with duplicate attestations.
	flights map[string]*attestFlight
}

// attestFlight is one in-progress lazy attestation; waiters block on
// done and read key/err after it closes.
type attestFlight struct {
	done chan struct{}
	key  *rsa.PublicKey
	err  error
}

// clientSession pairs an endpoint's crypto session with the enclave
// key it was established against, so a re-attested endpoint (fresh
// enclave key) invalidates the session instead of sending undecryptable
// traffic.
type clientSession struct {
	pub  *rsa.PublicKey
	sess *enclave.Session
}

// New builds a participant session. The trust material may arrive later
// via Attest; sends fail until a key is attested or pinned.
func New(cfg Config) (*Participant, error) {
	if len(cfg.Proxies) == 0 {
		return nil, fmt.Errorf("client: Config.Proxies must name at least one proxy endpoint")
	}
	tr := cfg.Transport
	if tr == nil {
		tr = transport.NewHTTP(nil)
	}
	return &Participant{
		tr:          tr,
		proxies:     append([]string(nil), cfg.Proxies...),
		server:      cfg.Server,
		clientID:    cfg.ClientID,
		authority:   cfg.Authority,
		measurement: cfg.Measurement,
		keys:        make(map[string]*rsa.PublicKey),
		sessions:    make(map[string]*clientSession),
		noSessions:  cfg.DisableSessions,
		flights:     make(map[string]*attestFlight),
	}, nil
}

// SetClientID sets the pseudonymous id sent with each update.
func (c *Participant) SetClientID(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clientID = id
}

// SetEnclaveKey pins the primary proxy's enclave key directly (for
// deployments where the key is distributed out of band instead of via
// attestation).
func (c *Participant) SetEnclaveKey(pub *rsa.PublicKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.keys[c.proxies[0]] = pub
}

// Proxies returns the session's current failover list (a copy).
func (c *Participant) Proxies() []string {
	return c.proxySnapshot()
}

// proxySnapshot copies the failover list under the lock; walks iterate
// the snapshot so a concurrent Discover re-rank cannot skip or repeat
// an endpoint mid-walk.
func (c *Participant) proxySnapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.proxies...)
}

// primary returns the current head of the failover list.
func (c *Participant) primary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.proxies[0]
}

// maxDiscoverProbes bounds one Discover sweep: a malicious or buggy
// peer advertising an endless peer list must not turn a bootstrap into
// an unbounded crawl. 64 covers any plausible front tier many times
// over.
const maxDiscoverProbes = 64

// Discover refreshes the failover list from the tier itself: it sweeps
// /v1/discover starting from the current list (so a single seed
// endpoint bootstraps the full front set from the peers it advertises,
// transitively), scores every endpoint by the health its advertisement
// reports, and REPLACES the failover list with the endpoints ranked
// healthiest-first. The ranking is what makes failover self-healing: a
// front that is shedding load advertises a health score strictly below
// any non-shedding front's, so the next walk tries healthy fronts
// first without any operator re-configuration.
//
// Scoring: a reachable endpoint ranks by its advertised health; an
// endpoint without a discovery surface (404 / ErrNotSupported — a
// pre-discovery proxy) scores neutral 0 so static lists keep working
// unchanged; an unreachable endpoint ranks below everything but stays
// on the list — it may only be down for a moment, and dropping it
// would shrink the failover set permanently. The sort is stable over
// encounter order (configured list first), so ties preserve the
// operator's ordering. If NO endpoint answered at all, the list is
// left untouched and an error is returned: an empty sweep says the
// network is broken, not that every front vanished.
//
// Newly learned endpoints carry no trust: sends to them still gate on
// the same attestation handshake as configured ones (lazy, on first
// use).
func (c *Participant) Discover(ctx context.Context) error {
	frontier := c.proxySnapshot()
	seen := make(map[string]bool, len(frontier))
	for _, ep := range frontier {
		seen[ep] = true
	}
	order := make([]string, 0, len(frontier))
	score := make(map[string]float64, len(frontier))
	var errs []error
	reached := 0
	for probes := 0; len(frontier) > 0 && probes < maxDiscoverProbes; probes++ {
		ep := frontier[0]
		frontier = frontier[1:]
		order = append(order, ep)
		dr, err := c.tr.Discover(ctx, ep)
		switch se := transport.AsStatus(err); {
		case err == nil:
			reached++
			score[ep] = dr.Health
			for _, peer := range dr.Peers {
				if peer != "" && !seen[peer] {
					seen[peer] = true
					frontier = append(frontier, peer)
				}
			}
		case errors.Is(err, transport.ErrNotSupported) ||
			(se != nil && se.Code == http.StatusNotFound):
			// A reachable peer without a discovery surface: neutral, not
			// penalised — a static list of pre-discovery proxies must rank
			// exactly as configured.
			reached++
			score[ep] = 0
		default:
			score[ep] = -1
			errs = append(errs, fmt.Errorf("%s: %w", ep, err))
		}
		if ctx.Err() != nil {
			break
		}
	}
	// Endpoints advertised but never probed (probe cap, ctx expiry):
	// keep them, neutral — known to exist, health unknown.
	for _, ep := range frontier {
		order = append(order, ep)
		score[ep] = 0
	}
	if reached == 0 {
		return fmt.Errorf("client: discovery reached no proxy, keeping the current failover list: %w", errors.Join(errs...))
	}
	sort.SliceStable(order, func(i, j int) bool {
		return score[order[i]] > score[order[j]]
	})
	c.mu.Lock()
	c.proxies = order
	c.mu.Unlock()
	return nil
}

// StartDiscovery runs Discover immediately and then every interval
// until ctx is cancelled, in a background goroutine. Sweep failures
// are dropped (the list stays as it was; the next tick retries) — the
// refresh loop is an optimisation of the failover order, never a
// correctness dependency.
func (c *Participant) StartDiscovery(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = 30 * time.Second
	}
	go func() {
		_ = c.Discover(ctx)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				_ = c.Discover(ctx)
			}
		}
	}()
}

// Attest pins the trust material and runs the attestation handshake
// against every proxy of the failover list CONCURRENTLY, pinning the
// enclave key of each proxy it reaches — a down fallback costs one
// transport timeout in parallel with the others, not a serial stall
// per endpoint. It succeeds when at least one proxy attested (the rest
// attest lazily when a send fails over to them) and fails only when NO
// proxy could be attested.
func (c *Participant) Attest(ctx context.Context, authority *ecdsa.PublicKey, measurement [32]byte) error {
	c.mu.Lock()
	c.authority = authority
	c.measurement = measurement
	c.mu.Unlock()
	proxies := c.proxySnapshot()
	errs := make([]error, len(proxies))
	var wg sync.WaitGroup
	for i, ep := range proxies {
		wg.Add(1)
		go func(i int, ep string) {
			defer wg.Done()
			if _, err := c.attestOne(ctx, ep); err != nil {
				errs[i] = fmt.Errorf("%s: %w", ep, err)
			}
		}(i, ep)
	}
	wg.Wait()
	for _, err := range errs {
		if err == nil {
			return nil
		}
	}
	return fmt.Errorf("client: no proxy attested: %w", errors.Join(errs...))
}

// attestedKey returns ep's pinned enclave key, running the lazy
// failover attestation at most ONCE per endpoint no matter how many
// goroutines ask concurrently. The first caller owns the handshake;
// the rest wait for its outcome (or their own ctx) — without this,
// every sender failing over in the same instant ran a full handshake
// against the fallback proxy, and the loser of each race overwrote the
// winner's pinned key mid-send. Failures are not cached: the flight is
// cleared before its waiters wake, so the next send retries afresh.
func (c *Participant) attestedKey(ctx context.Context, ep string) (*rsa.PublicKey, error) {
	c.mu.Lock()
	if key := c.keys[ep]; key != nil {
		c.mu.Unlock()
		return key, nil
	}
	if f := c.flights[ep]; f != nil {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.key, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &attestFlight{done: make(chan struct{})}
	c.flights[ep] = f
	c.mu.Unlock()
	f.key, f.err = c.attestOne(ctx, ep)
	c.mu.Lock()
	delete(c.flights, ep)
	c.mu.Unlock()
	close(f.done)
	return f.key, f.err
}

// attestOne runs the handshake against one endpoint and pins its key.
func (c *Participant) attestOne(ctx context.Context, ep string) (*rsa.PublicKey, error) {
	c.mu.Lock()
	authority := c.authority
	measurement := c.measurement
	c.mu.Unlock()
	if authority == nil {
		return nil, fmt.Errorf("client: no trust material; call Attest first")
	}
	rep, nonce, err := transport.FetchReport(ctx, c.tr, ep)
	if err != nil {
		return nil, err
	}
	pub, err := rep.Verify(authority, measurement, nonce)
	if err != nil {
		return nil, err
	}
	rsaPub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("client: attested key is %T, want RSA", pub)
	}
	c.mu.Lock()
	c.keys[ep] = rsaPub
	c.mu.Unlock()
	return rsaPub, nil
}

// sessionFor returns ep's crypto session, establishing one bound to
// the endpoint's currently-pinned enclave key when none exists (or the
// cached one was built for a superseded key). The RSA wrap runs outside
// the lock; a racing establisher's session wins and the loser's wrap is
// discarded.
func (c *Participant) sessionFor(ep string, key *rsa.PublicKey) (*enclave.Session, error) {
	c.mu.Lock()
	if s := c.sessions[ep]; s != nil && s.pub == key {
		c.mu.Unlock()
		return s.sess, nil
	}
	c.mu.Unlock()
	sess, err := enclave.NewSession(key)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.sessions[ep]; s != nil && s.pub == key {
		return s.sess, nil
	}
	c.sessions[ep] = &clientSession{pub: key, sess: sess}
	return sess, nil
}

// dropSession invalidates ep's session — but only if sess is still the
// pinned one, so a loser of a concurrent re-establish race cannot tear
// down the winner's fresh session.
func (c *Participant) dropSession(ep string, sess *enclave.Session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.sessions[ep]; s != nil && s.sess == sess {
		delete(c.sessions, ep)
	}
}

// wrapFor seals raw for ep's enclave: under the endpoint's crypto
// session by default (the first wrap of a session is the establish
// message carrying the RSA-wrapped key; every later wrap is GCM-only),
// or the legacy one-shot hybrid wrap with sessions disabled. It returns
// the session that produced the ciphertext (nil on the legacy path) so
// the caller can invalidate precisely that session on a typed session
// rejection. A session whose counter space is exhausted is rotated
// once, transparently.
func (c *Participant) wrapFor(ep string, key *rsa.PublicKey, raw []byte) ([]byte, *enclave.Session, error) {
	if c.noSessions {
		ct, err := enclave.Encrypt(key, raw)
		return ct, nil, err
	}
	for attempt := 0; ; attempt++ {
		sess, err := c.sessionFor(ep, key)
		if err != nil {
			return nil, nil, err
		}
		ct, err := sess.Wrap(raw)
		if err == nil {
			return ct, sess, nil
		}
		c.dropSession(ep, sess)
		if attempt > 0 {
			return nil, nil, err
		}
	}
}

// rewrapFresh wraps raw under a brand-new session, so the ciphertext
// is the self-contained establish frame the enclave can always open.
// It is the retry path after a typed session rejection: re-wrapping
// through the cache (wrapFor) is not enough there, because a
// concurrent sender may have re-established already and cached a
// session whose OWN establish frame is still in flight — wrapping
// under it emits a data frame that can race ahead of that establish
// and be rejected all over again. The fresh session is cached
// (last-establisher-wins, same policy as sessionFor) so subsequent
// sends ride it.
func (c *Participant) rewrapFresh(ep string, key *rsa.PublicKey, raw []byte) ([]byte, *enclave.Session, error) {
	sess, err := enclave.NewSession(key)
	if err != nil {
		return nil, nil, err
	}
	ct, err := sess.Wrap(raw) // first wrap of a session = establish
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	c.sessions[ep] = &clientSession{pub: key, sess: sess}
	c.mu.Unlock()
	return ct, sess, nil
}

// Busy-tier backoff: when a whole failover walk comes back with every
// proxy rejecting at the ingress door and at least one of them answering
// transport.ErrBusy (a full bounded queue — transient by construction),
// SendUpdate retries the walk after a jittered exponential backoff
// instead of returning. Without it, callers that loop on the transient
// error hot-spin against the saturated tier: the participant-scale load
// run measured 10.4 MILLION busy rejections for 40k accepted sends,
// every one of them a full encrypt + walk burning CPU on both sides of
// the queue it was trying to drain.
const (
	busyRetryBase = 2 * time.Millisecond
	busyRetryCap  = 250 * time.Millisecond
)

// SendUpdate encrypts the parameter update for the attested enclave and
// sends it into the mixing tier, failing over down the proxy list ONLY
// when the failed attempt provably did not ingest the update: a proxy
// that was never reached (dial failure, unregistered loopback name),
// answered an error status (any non-2xx response means the handler
// rejected before counting anything), or cannot be attested is
// skipped. Two failures stop the walk instead: a MATERIAL-shaped 4xx
// rejection (bad request, too large, unprocessable, protocol version)
// is returned immediately — every proxy of the tier would reject the
// same bytes, while endpoint-specific 4xx like auth or routing
// failures do fail over — and an AMBIGUOUS transport failure — a
// timeout or connection loss after the request went out — is returned
// without trying further proxies, because the slow proxy may have
// ingested the update and re-sending it elsewhere would double-count
// this participant in the round. A walk on which some proxy answered
// transport.ErrBusy (and none ingested) retries with jittered
// exponential backoff, bounded by ctx — see busyRetryBase/busyRetryCap.
// Acceptance (202) means the update entered the tier — delivery to the
// aggregation server is asynchronous (the proxy's sealed outbox retries
// across downstream outages), so observe round progress with
// WaitForRound rather than inferring it from the send.
func (c *Participant) SendUpdate(ctx context.Context, ps nn.ParamSet) error {
	raw, err := nn.EncodeParamSet(ps)
	if err != nil {
		return err
	}
	c.mu.Lock()
	clientID := c.clientID
	haveAny := c.authority != nil || len(c.keys) > 0
	c.mu.Unlock()
	if !haveAny {
		return fmt.Errorf("client: no enclave key pinned; call Attest first")
	}
	backoff := busyRetryBase
	for {
		err := c.sendWalk(ctx, raw, clientID)
		if err == nil {
			return nil
		}
		busy := errors.Is(err, transport.ErrBusy)
		limited, hint := rateLimited(err)
		if !busy && !limited {
			return err
		}
		// Both failure shapes reach here only through the
		// every-proxy-failed path, where each attempt provably ingested
		// nothing, so a retry cannot double-count. Equal jitter
		// desynchronises the cohort: a round's worth of participants
		// hitting a full queue (or tripping one rate limiter) together
		// must not come back together.
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		if limited && hint > d {
			// Honour the admission gate's Retry-After: coming back
			// sooner than the peer asked just burns another 429. Jitter
			// rides on top so the shed cohort still spreads out.
			d = hint + time.Duration(rand.Int63n(int64(backoff/2)+1))
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("client: gave up retrying a busy tier: %w", err)
		case <-time.After(d):
		}
		if backoff = backoff * 2; backoff > busyRetryCap {
			backoff = busyRetryCap
		}
	}
}

// rateLimited inspects a walk's joined error for 429 admission
// rejections, returning whether any proxy answered one and the largest
// Retry-After hint among them. It traverses the whole join tree
// (errors.Join exposes Unwrap() []error) instead of errors.As, which
// would stop at the first StatusError of any code.
func rateLimited(err error) (bool, time.Duration) {
	var limited bool
	var hint time.Duration
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if se, ok := e.(*transport.StatusError); ok {
			if se.Code == http.StatusTooManyRequests {
				limited = true
				if se.RetryAfter > hint {
					hint = se.RetryAfter
				}
			}
			return
		}
		switch u := e.(type) {
		case interface{ Unwrap() []error }:
			for _, sub := range u.Unwrap() {
				walk(sub)
			}
		case interface{ Unwrap() error }:
			walk(u.Unwrap())
		}
	}
	walk(err)
	return limited, hint
}

// sendWalk runs one failover walk down the proxy list with the
// SendUpdate semantics above.
func (c *Participant) sendWalk(ctx context.Context, raw []byte, clientID string) error {
	var errs []error
	var err error
	for _, ep := range c.proxySnapshot() {
		c.mu.Lock()
		key := c.keys[ep]
		c.mu.Unlock()
		if key == nil {
			// Lazy failover attestation: this proxy was down (or not yet
			// attested) when the session started. Single-flighted — a
			// failover storm attests the fallback once, not once per
			// in-flight send.
			if key, err = c.attestedKey(ctx, ep); err != nil {
				errs = append(errs, fmt.Errorf("%s: attest: %w", ep, err))
				continue
			}
		}
		ct, sess, err := c.wrapFor(ep, key, raw)
		if err != nil {
			return err
		}
		_, err = c.tr.SendUpdate(ctx, ep, transport.UpdateRequest{Body: ct, ClientID: clientID})
		if err != nil && sess != nil && transport.SessionRejected(err) {
			// The proxy's enclave no longer holds our session (cache
			// eviction, a restart that kept its sealed identity, or our
			// data frame raced ahead of the session's establish frame)
			// and provably ingested nothing. Re-establish with a full
			// wrap and resend to the SAME endpoint once — transparent
			// to the failover walk. The rewrap deliberately bypasses
			// the session cache: the resent ciphertext must be a
			// self-contained establish frame, which the enclave can
			// never reject as unknown (see rewrapFresh), so one retry
			// suffices. A rejection of the fresh establish itself falls
			// through to the ordinary classification below.
			c.dropSession(ep, sess)
			if ct, sess, err = c.rewrapFresh(ep, key, raw); err != nil {
				return err
			}
			_, err = c.tr.SendUpdate(ctx, ep, transport.UpdateRequest{Body: ct, ClientID: clientID})
		}
		if err == nil {
			return nil
		}
		if se := transport.AsStatus(err); se != nil {
			switch se.Code {
			case http.StatusBadRequest, http.StatusRequestEntityTooLarge,
				http.StatusUnprocessableEntity, http.StatusUpgradeRequired:
				// MATERIAL-shaped rejection: every proxy of the tier
				// would reject the same bytes, so failing over cannot
				// help — and a 4xx proves the handler refused before
				// counting anything. Endpoint-specific 4xx (401/403
				// auth, 404 routing) fall through to failover instead:
				// they condemn this endpoint, not the update.
				return fmt.Errorf("client: update rejected: %w", err)
			}
			if se.Code == http.StatusBadGateway || se.Code == http.StatusGatewayTimeout {
				// These conventionally come from an INTERMEDIARY (reverse
				// proxy, ingress) whose backend connection broke or timed
				// out — the mixing proxy behind it may have ingested the
				// update before the gateway gave up, so they are as
				// ambiguous as a client-side timeout.
				return fmt.Errorf("client: gateway failure at %s after the request may have been delivered (not failing over — a duplicate would skew the round): %w", ep, err)
			}
			// Everything else (401/403/404/408/429, 500, 503, …): the
			// endpoint refused or failed before ingesting (our handlers
			// only answer 2xx after mixing), and the failure is specific
			// to this endpoint; safe elsewhere.
		} else if !transport.Unreached(err) {
			// Ambiguous transport failure: the request may have been
			// delivered and ingested before the connection died.
			// Re-sending to another proxy of the SAME tier could count
			// this participant twice in the round, so surface the
			// ambiguity instead of guessing.
			return fmt.Errorf("client: send to %s failed after the request may have been delivered (not failing over — a duplicate would skew the round): %w", ep, err)
		}
		errs = append(errs, fmt.Errorf("%s: %w", ep, err))
		if ctx.Err() != nil {
			break
		}
	}
	return fmt.Errorf("client: send update failed on every proxy: %w", errors.Join(errs...))
}

// FetchModel retrieves the current global model and round number from
// the aggregation server.
func (c *Participant) FetchModel(ctx context.Context) (int, nn.ParamSet, error) {
	if c.server == "" {
		return 0, nn.ParamSet{}, fmt.Errorf("client: no aggregation server endpoint configured")
	}
	m, err := c.tr.Model(ctx, c.server)
	if err != nil {
		return 0, nn.ParamSet{}, fmt.Errorf("client: fetch model: %w", err)
	}
	ps, err := nn.DecodeParamSet(m.Body)
	if err != nil {
		return 0, nn.ParamSet{}, err
	}
	return m.Round, ps, nil
}

// WaitForRound polls the server until its round counter reaches
// minRound (or ctx expires) and returns the model of that round.
func (c *Participant) WaitForRound(ctx context.Context, minRound int, poll time.Duration) (int, nn.ParamSet, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		round, ps, err := c.FetchModel(ctx)
		if err == nil && round >= minRound {
			return round, ps, nil
		}
		select {
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
			return 0, nn.ParamSet{}, fmt.Errorf("client: waiting for round %d: %w", minRound, err)
		case <-time.After(poll):
		}
	}
}

// ProxyStatus fetches the primary proxy's tier status.
func (c *Participant) ProxyStatus(ctx context.Context) (wire.ShardedProxyStatus, error) {
	return proxyStatus(ctx, c.tr, c.primary())
}

// proxyStatus fetches a proxy status report, shared by the session and
// admin sub-client. A non-proxy peer is a local validation failure (a
// plain error), not a peer rejection.
func proxyStatus(ctx context.Context, tr transport.Transport, ep string) (wire.ShardedProxyStatus, error) {
	st, err := tr.Status(ctx, ep)
	if err != nil {
		return wire.ShardedProxyStatus{}, err
	}
	if st.Proxy == nil {
		return wire.ShardedProxyStatus{}, fmt.Errorf("client: endpoint %s is not a proxy", ep)
	}
	return *st.Proxy, nil
}

// ServerStatus fetches the aggregation server's round progress.
func (c *Participant) ServerStatus(ctx context.Context) (wire.ServerStatus, error) {
	st, err := c.tr.Status(ctx, c.server)
	if err != nil {
		return wire.ServerStatus{}, err
	}
	if st.Server == nil {
		return wire.ServerStatus{}, fmt.Errorf("client: endpoint %s is not an aggregation server", c.server)
	}
	return *st.Server, nil
}

// Admin returns the admin sub-client for the primary proxy's topology
// plane, authenticated with the tier's inter-proxy secret.
func (c *Participant) Admin(secret string) *Admin {
	return NewAdmin(c.tr, c.primary(), secret)
}
