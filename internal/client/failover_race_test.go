package client_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mixnn/internal/client"
	"mixnn/internal/enclave"
	"mixnn/internal/proxy"
	"mixnn/internal/transport"
	"mixnn/internal/wire"
)

// attestCounter wraps a real proxy and counts attestation handshakes,
// delegating everything to the wrapped Server.
type attestCounter struct {
	transport.Server
	n atomic.Int32
}

func (a *attestCounter) HandleAttest(ctx context.Context, nonce []byte) (wire.AttestationResponse, error) {
	a.n.Add(1)
	return a.Server.HandleAttest(ctx, nonce)
}

// blockingIngress wraps a real proxy and parks HandleUpdate on a gate,
// so a test can hold the peer's loopback workers busy; every other
// operation (attestation included) passes through.
type blockingIngress struct {
	transport.Server
	entered chan struct{}
	release chan struct{}
}

func (b *blockingIngress) HandleUpdate(ctx context.Context, req transport.UpdateRequest) (transport.Receipt, error) {
	b.entered <- struct{}{}
	<-b.release
	return b.Server.HandleUpdate(ctx, req)
}

// twoProxyTier stands up an agg server plus two real single-shard
// proxies (same code identity, so one (authority, measurement) pin
// covers both) over lb, registering them as primaryEP/backupEP via the
// given wrappers.
func twoProxyTier(t *testing.T, lb *transport.Loopback, primary, backup func(transport.Server) transport.Server) (*enclave.Platform, *enclave.Enclave, *proxy.ShardedProxy, *proxy.ShardedProxy) {
	t.Helper()
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	agg, err := proxy.NewAggServer(testUpdate(), 4)
	if err != nil {
		t.Fatal(err)
	}
	lb.Register("loop://agg", agg)
	mk := func(id string, seed int64) (*enclave.Enclave, *proxy.ShardedProxy) {
		encl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-failover-test"}, platform)
		if err != nil {
			t.Fatal(err)
		}
		px, err := proxy.NewSharded(proxy.ShardedConfig{
			Upstream: "loop://agg", K: 2, RoundSize: 4, Shards: 1,
			Seed: seed, Transport: lb,
		}, encl, platform)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(px.Close)
		return encl, px
	}
	enclA, pxA := mk("a", 1)
	_, pxB := mk("b", 2)
	lb.Register("loop://primary", primary(pxA))
	lb.Register("loop://backup", backup(pxB))
	return platform, enclA, pxA, pxB
}

func ident(s transport.Server) transport.Server { return s }

// wedgePrimary parks one raw send inside the gated handler and then
// fills the depth-1 queue with a second, returning a WaitGroup that
// drains once gate.release is closed. The two sends MUST be staged
// sequentially — launched together they race into the depth-1 queue,
// and if the second arrives before the worker dequeues the first it
// bounces ErrBusy, leaving the queue empty once the worker parks in
// the gate (and a Queued>=1 poll waiting forever).
func wedgePrimary(lb *transport.Loopback, gate *blockingIngress) *sync.WaitGroup {
	wedged := &sync.WaitGroup{}
	send := func() {
		defer wedged.Done()
		lb.SendUpdate(context.Background(), "loop://primary", transport.UpdateRequest{Body: []byte("wedge")})
	}
	wedged.Add(1)
	go send()
	<-gate.entered // the worker owns the first send
	wedged.Add(1)
	go send()
	for { // wait until the second fills the queue
		queued := false
		for _, s := range lb.Stats() {
			if s.Endpoint == "loop://primary" && s.Queued >= 1 {
				queued = true
			}
		}
		if queued {
			return wedged
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFailoverAttestSingleFlight pins the duplicate-attest fix: many
// goroutines sharing one Participant fail over simultaneously (the
// primary is dead), and the fallback proxy must see exactly ONE
// attestation handshake — the stampede waits on the single flight
// instead of each sender re-running the handshake and re-pinning the
// key over its neighbour's. Run under -race, this also pins the
// key-map writes the old stampede raced on.
func TestFailoverAttestSingleFlight(t *testing.T) {
	lb := transport.NewLoopback()
	defer lb.Close()
	counter := &attestCounter{}
	platform, encl, _, pxB := twoProxyTier(t, lb, ident, func(s transport.Server) transport.Server {
		counter.Server = s
		return counter
	})
	lb.Unregister("loop://primary") // the primary is dead from the start

	c, err := client.New(client.Config{
		Proxies: []string{"loop://primary", "loop://backup"}, Server: "loop://agg",
		Transport: lb, Authority: platform.AttestationPublicKey(), Measurement: encl.Measurement(),
	})
	if err != nil {
		t.Fatal(err)
	}

	const senders = 32
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, senders)
	start := make(chan struct{})
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			errs[i] = c.SendUpdate(ctx, testUpdate())
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sender %d failed over unsuccessfully: %v", i, err)
		}
	}
	if got := counter.n.Load(); got != 1 {
		t.Fatalf("failover storm ran %d attestation handshakes against the fallback, want exactly 1 (single-flight)", got)
	}
	if got := pxB.Status().Received; got != senders {
		t.Fatalf("fallback ingested %d updates, want %d", got, senders)
	}
}

// TestSendUpdateFailsOverOnBusy: a primary whose bounded ingress queue
// is full rejects with ErrBusy — transient and provably-not-ingested —
// and the SDK fails over to the next proxy instead of surfacing an
// error or risking a duplicate.
func TestSendUpdateFailsOverOnBusy(t *testing.T) {
	lb := transport.NewLoopbackWith(transport.LoopbackOptions{QueueDepth: 1, Workers: 1})
	defer lb.Close()
	gate := &blockingIngress{entered: make(chan struct{}, 8), release: make(chan struct{})}
	platform, encl, _, pxB := twoProxyTier(t, lb, func(s transport.Server) transport.Server {
		gate.Server = s
		return gate
	}, ident)

	c, err := client.New(client.Config{
		Proxies: []string{"loop://primary", "loop://backup"}, Server: "loop://agg",
		Transport: lb, Authority: platform.AttestationPublicKey(), Measurement: encl.Measurement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Wedge the primary: one request inside the handler, one filling the
	// depth-1 queue. (Raw sends — they park in the gate before the real
	// proxy would decode them.) Staged sequentially: the second send may
	// only go out after the worker owns the first, or the two race into
	// the depth-1 queue and one bounces ErrBusy, leaving nothing queued.
	wedged := wedgePrimary(lb, gate)

	if err := c.SendUpdate(ctx, testUpdate()); err != nil {
		t.Fatalf("send with a busy primary must fail over cleanly, got %v", err)
	}
	if got := pxB.Status().Received; got != 1 {
		t.Fatalf("backup ingested %d updates, want 1 (the failed-over send)", got)
	}
	close(gate.release)
	wedged.Wait()
}

// establishDelayer wraps a real proxy and holds every session
// ESTABLISH frame ("MXSE" magic) for delay before handling it, so
// data frames wrapped under a just-created session reliably race
// ahead of the establish that would make the enclave recognise them.
type establishDelayer struct {
	transport.Server
	delay time.Duration
}

func (d *establishDelayer) HandleUpdate(ctx context.Context, req transport.UpdateRequest) (transport.Receipt, error) {
	if len(req.Body) >= 4 && string(req.Body[:4]) == "MXSE" {
		time.Sleep(d.delay)
	}
	return d.Server.HandleUpdate(ctx, req)
}

// TestSendUpdateConcurrentSessionEstablishRace pins the re-establish
// retry against wire reordering: many goroutines share ONE participant,
// so all but the first wrap data frames under a session whose establish
// frame is still in flight (held by the delayer), and every one of them
// draws a typed 428. The retry must resend a SELF-CONTAINED establish
// frame — re-wrapping through the session cache can pick up a
// neighbouring retrier's session whose own establish is also still in
// flight, drawing a second 428 that surfaces to the caller.
func TestSendUpdateConcurrentSessionEstablishRace(t *testing.T) {
	lb := transport.NewLoopback()
	defer lb.Close()
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	encl, err := enclave.New(enclave.Config{CodeIdentity: "mixnn-proxy-sess-race-test"}, platform)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := proxy.NewAggServer(testUpdate(), 8)
	if err != nil {
		t.Fatal(err)
	}
	lb.Register("loop://agg", agg)
	px, err := proxy.NewSharded(proxy.ShardedConfig{
		Upstream: "loop://agg", K: 2, RoundSize: 8, Shards: 1,
		Seed: 1, Transport: lb,
	}, encl, platform)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	lb.Register("loop://front", &establishDelayer{Server: px, delay: 5 * time.Millisecond})

	c, err := client.New(client.Config{
		Proxies: []string{"loop://front"}, Server: "loop://agg",
		Transport: lb, Authority: platform.AttestationPublicKey(), Measurement: encl.Measurement(),
	})
	if err != nil {
		t.Fatal(err)
	}

	const senders = 8
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, senders)
	start := make(chan struct{})
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			errs[i] = c.SendUpdate(ctx, testUpdate())
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sender %d surfaced a session rejection the retry should absorb: %v", i, err)
		}
	}
	if got := px.Status().Received; got != senders {
		t.Fatalf("proxy ingested %d updates, want %d", got, senders)
	}
}

// TestSendUpdateBusyBackoffBounded pins the busy-retry fix: against a
// tier whose EVERY proxy answers ErrBusy (wedged bounded queue, no
// fallback), SendUpdate must keep retrying under jittered exponential
// backoff until its context expires — a handful of walks over hundreds
// of milliseconds, not the thousands a hot spin produces (the
// participant-scale load run measured 10.4M busy rejections) and not
// the single walk the old code gave up after.
func TestSendUpdateBusyBackoffBounded(t *testing.T) {
	lb := transport.NewLoopbackWith(transport.LoopbackOptions{QueueDepth: 1, Workers: 1})
	defer lb.Close()
	gate := &blockingIngress{entered: make(chan struct{}, 8), release: make(chan struct{})}
	platform, encl, _, _ := twoProxyTier(t, lb, func(s transport.Server) transport.Server {
		gate.Server = s
		return gate
	}, ident)

	// Single-proxy list: no fallback to absorb the send, so every walk
	// ends busy.
	c, err := client.New(client.Config{
		Proxies: []string{"loop://primary"}, Server: "loop://agg",
		Transport: lb, Authority: platform.AttestationPublicKey(), Measurement: encl.Measurement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Attest BEFORE wedging the queue (the single worker about to park in
	// the gate serves attestation too).
	attCtx, attCancel := context.WithTimeout(context.Background(), time.Minute)
	defer attCancel()
	if err := c.Attest(attCtx, platform.AttestationPublicKey(), encl.Measurement()); err != nil {
		t.Fatal(err)
	}

	// Wedge the primary: one request inside the handler, one filling the
	// depth-1 queue (staged sequentially, see wedgePrimary).
	wedged := wedgePrimary(lb, gate)

	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	err = c.SendUpdate(ctx, testUpdate())
	close(gate.release)
	wedged.Wait()
	if err == nil {
		t.Fatal("send against a fully wedged tier returned nil")
	}
	// Every walk the client ran was rejected at the door and counted by
	// the peer's busy counter; the two wedge sends never saw the counter
	// (one entered the handler, one queued).
	walks := uint64(0)
	for _, s := range lb.Stats() {
		if s.Endpoint == "loop://primary" {
			walks = s.Busy
		}
	}
	if walks < 2 {
		t.Fatalf("client gave up after %d walks; the busy backoff must retry within the context budget", walks)
	}
	if walks > 16 {
		t.Fatalf("client ran %d walks in 400ms: busy backoff is not backing off (hot spin)", walks)
	}
}
