package data

import (
	"math/rand"
	"testing"

	"mixnn/internal/tensor"
)

func TestDatasetBatchGathersRows(t *testing.T) {
	ds := NewDataset(3, 2)
	copy(ds.X.Data(), []float64{1, 2, 3, 4, 5, 6})
	ds.Y[0], ds.Y[1], ds.Y[2] = 7, 8, 9

	x, y := ds.Batch([]int{2, 0})
	wantX := tensor.MustFromSlice([]float64{5, 6, 1, 2}, 2, 2)
	if !tensor.Equal(x, wantX) {
		t.Fatalf("Batch X = %v, want %v", x, wantX)
	}
	if y[0] != 9 || y[1] != 7 {
		t.Fatalf("Batch Y = %v, want [9 7]", y)
	}
}

func TestDatasetSplitSizes(t *testing.T) {
	ds := NewDataset(12, 1)
	rng := rand.New(rand.NewSource(1))
	train, test := ds.Split(5.0/6, rng)
	if train.Len() != 10 || test.Len() != 2 {
		t.Fatalf("split sizes = %d/%d, want 10/2", train.Len(), test.Len())
	}
}

func TestDatasetSplitPanicsOnBadFrac(t *testing.T) {
	ds := NewDataset(4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on frac > 1")
		}
	}()
	ds.Split(1.5, rand.New(rand.NewSource(1)))
}

func TestDatasetShufflePreservesPairs(t *testing.T) {
	n := 50
	ds := NewDataset(n, 1)
	for i := 0; i < n; i++ {
		ds.X.Data()[i] = float64(i)
		ds.Y[i] = i
	}
	ds.Shuffle(rand.New(rand.NewSource(2)))
	for i := 0; i < n; i++ {
		if int(ds.X.Data()[i]) != ds.Y[i] {
			t.Fatalf("row %d: X %g decoupled from Y %d", i, ds.X.Data()[i], ds.Y[i])
		}
	}
}

func TestMerge(t *testing.T) {
	a := NewDataset(2, 3)
	b := NewDataset(1, 3)
	b.Y[0] = 5
	m := Merge(a, b)
	if m.Len() != 3 || m.Dim() != 3 {
		t.Fatalf("merged %dx%d, want 3x3", m.Len(), m.Dim())
	}
	if m.Y[2] != 5 {
		t.Fatalf("labels not concatenated: %v", m.Y)
	}
}

func TestMergePanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on width mismatch")
		}
	}()
	Merge(NewDataset(1, 2), NewDataset(1, 3))
}

func TestBatchesCoverDataset(t *testing.T) {
	ds := NewDataset(10, 1)
	batches := ds.Batches(3, rand.New(rand.NewSource(3)))
	if len(batches) != 4 {
		t.Fatalf("batch count = %d, want 4", len(batches))
	}
	seen := make(map[int]bool)
	for _, b := range batches {
		for _, i := range b {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("covered %d indices, want 10", len(seen))
	}
}

// nearestCentroidAccuracy is a weak learner used to verify the synthetic
// tasks are learnable: train per-class centroids, classify by distance.
func nearestCentroidAccuracy(train, test Dataset, classes int) float64 {
	dim := train.Dim()
	centroids := make([]*tensor.Tensor, classes)
	counts := make([]int, classes)
	for c := range centroids {
		centroids[c] = tensor.New(dim)
	}
	for i := 0; i < train.Len(); i++ {
		row, _ := tensor.FromSlice(train.X.Data()[i*dim:(i+1)*dim], dim)
		centroids[train.Y[i]].Add(row)
		counts[train.Y[i]]++
	}
	for c := range centroids {
		if counts[c] > 0 {
			centroids[c].Scale(1 / float64(counts[c]))
		}
	}
	correct := 0
	for i := 0; i < test.Len(); i++ {
		row, _ := tensor.FromSlice(test.X.Data()[i*dim:(i+1)*dim], dim)
		best, bestD := -1, 0.0
		for c := range centroids {
			d := tensor.EuclideanDistance(row, centroids[c])
			if best < 0 || d < bestD {
				best, bestD = c, d
			}
		}
		if best == test.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(test.Len())
}

func testSourceBasics(t *testing.T, src Source, wantParticipants int) {
	t.Helper()
	c, h, w := src.Input()
	dim := c * h * w

	parts := src.Participants(1)
	if len(parts) != wantParticipants {
		t.Fatalf("%s: %d participants, want %d", src.Name(), len(parts), wantParticipants)
	}
	attrSeen := make(map[int]bool)
	for _, p := range parts {
		if p.Attribute < 0 || p.Attribute >= src.AttrClasses() {
			t.Fatalf("%s: attribute %d out of range", src.Name(), p.Attribute)
		}
		attrSeen[p.Attribute] = true
		if p.Train.Dim() != dim || p.Test.Dim() != dim {
			t.Fatalf("%s: dims %d/%d, want %d", src.Name(), p.Train.Dim(), p.Test.Dim(), dim)
		}
		for _, y := range p.Train.Y {
			if y < 0 || y >= src.Classes() {
				t.Fatalf("%s: label %d out of range [0,%d)", src.Name(), y, src.Classes())
			}
		}
	}
	if len(attrSeen) != src.AttrClasses() {
		t.Fatalf("%s: only %d of %d attribute classes present", src.Name(), len(attrSeen), src.AttrClasses())
	}
	for a := 0; a < src.AttrClasses(); a++ {
		if src.AttrName(a) == "" {
			t.Fatalf("%s: empty attribute name for class %d", src.Name(), a)
		}
	}

	// Determinism: same seed, same data.
	again := src.Participants(1)
	if !tensor.Equal(parts[0].Train.X, again[0].Train.X) {
		t.Fatalf("%s: participants not deterministic", src.Name())
	}
	other := src.Participants(2)
	if tensor.Equal(parts[0].Train.X, other[0].Train.X) {
		t.Fatalf("%s: different seeds produced identical data", src.Name())
	}

	aux := src.Auxiliary(0, 30, 9)
	if aux.Len() != 30 || aux.Dim() != dim {
		t.Fatalf("%s: auxiliary %dx%d, want 30x%d", src.Name(), aux.Len(), aux.Dim(), dim)
	}
}

func TestCIFARSource(t *testing.T) {
	src := NewCIFAR(CIFARConfig{H: 16, W: 16, TrainPer: 40, TestPer: 10})
	testSourceBasics(t, src, 20)

	// The paper's group sizes: 6/6/8.
	parts := src.Participants(1)
	counts := make(map[int]int)
	for _, p := range parts {
		counts[p.Attribute]++
	}
	if counts[0] != 6 || counts[1] != 6 || counts[2] != 8 {
		t.Fatalf("group sizes = %v, want 6/6/8", counts)
	}

	// Preference skew: ~80% of a participant's labels in its group classes.
	groups := src.Groups()
	for _, p := range parts[:3] {
		pref := make(map[int]bool)
		for _, c := range groups[p.Attribute] {
			pref[c] = true
		}
		inPref := 0
		for _, y := range p.Train.Y {
			if pref[y] {
				inPref++
			}
		}
		frac := float64(inPref) / float64(len(p.Train.Y))
		if frac < 0.6 || frac > 0.95 {
			t.Fatalf("participant %d preferred fraction = %g, want ~0.8", p.ID, frac)
		}
	}

	// Main task learnable: nearest centroid far above the 10% chance level.
	train := Merge(parts[0].Train, parts[6].Train, parts[12].Train)
	test := Merge(parts[0].Test, parts[6].Test, parts[12].Test)
	if acc := nearestCentroidAccuracy(train, test, src.Classes()); acc < 0.5 {
		t.Fatalf("CIFAR nearest-centroid accuracy = %g, want > 0.5", acc)
	}
}

func TestCIFARGroupsDisjoint(t *testing.T) {
	src := NewCIFAR(CIFARConfig{})
	seen := make(map[int]int)
	for gi, g := range src.Groups() {
		for _, c := range g {
			if prev, ok := seen[c]; ok {
				t.Fatalf("class %d in groups %d and %d", c, prev, gi)
			}
			seen[c] = gi
		}
	}
	if len(seen) != src.Classes() {
		t.Fatalf("groups cover %d classes, want %d", len(seen), src.Classes())
	}
}

func TestMotionSenseSource(t *testing.T) {
	cfg := MotionSenseConfig()
	cfg.TrainPer, cfg.TestPer = 60, 12
	src := NewMotion(cfg)
	testSourceBasics(t, src, 24)

	// Activity recognition learnable above the ~17% chance level.
	parts := src.Participants(1)
	train := Merge(parts[0].Train, parts[1].Train)
	test := Merge(parts[0].Test, parts[1].Test)
	if acc := nearestCentroidAccuracy(train, test, src.Classes()); acc < 0.4 {
		t.Fatalf("motion nearest-centroid accuracy = %g, want > 0.4", acc)
	}
}

func TestMobiActSource(t *testing.T) {
	cfg := MobiActConfig()
	cfg.TrainPer, cfg.TestPer = 30, 6
	src := NewMotion(cfg)
	testSourceBasics(t, src, 58)
	if src.Name() != "mobiact" {
		t.Fatalf("name = %q", src.Name())
	}
	if _, _, w := src.Input(); w != 64 {
		t.Fatalf("window = %d, want 64", w)
	}
}

func TestMotionGenderFootprint(t *testing.T) {
	// Auxiliary data of the two genders must differ systematically: the
	// mean absolute amplitude of gait activities shifts by genderAmp.
	src := NewMotion(MotionConfig{TrainPer: 10, TestPer: 2})
	a0 := src.Auxiliary(0, 200, 5)
	a1 := src.Auxiliary(1, 200, 5)
	mean := func(d Dataset) float64 {
		s := 0.0
		for _, v := range d.X.Data() {
			if v < 0 {
				s -= v
			} else {
				s += v
			}
		}
		return s / float64(len(d.X.Data()))
	}
	m0, m1 := mean(a0), mean(a1)
	if m0 <= m1 {
		t.Fatalf("male mean |x| %g not greater than female %g (amplitude footprint missing)", m0, m1)
	}
}

func TestFacesSource(t *testing.T) {
	src := NewFaces(FacesConfig{TrainPer: 40, TestPer: 8})
	testSourceBasics(t, src, 20)

	// Smile detection learnable above the 50% chance level.
	parts := src.Participants(1)
	train := Merge(parts[0].Train, parts[1].Train)
	test := Merge(parts[0].Test, parts[1].Test)
	if acc := nearestCentroidAccuracy(train, test, 2); acc < 0.7 {
		t.Fatalf("faces nearest-centroid accuracy = %g, want > 0.7", acc)
	}
}

func TestFacesGenderFootprint(t *testing.T) {
	// Gender must be visible in the image distribution (hair band rows):
	// a nearest-centroid classifier on gender should beat chance easily.
	src := NewFaces(FacesConfig{})
	a0 := src.Auxiliary(0, 100, 3)
	a1 := src.Auxiliary(1, 100, 3)
	train := Merge(a0.Subset(seqInts(0, 80)), a1.Subset(seqInts(0, 80)))
	for i := 0; i < 80; i++ {
		train.Y[i] = 0
		train.Y[80+i] = 1
	}
	test := Merge(a0.Subset(seqInts(80, 100)), a1.Subset(seqInts(80, 100)))
	for i := 0; i < 20; i++ {
		test.Y[i] = 0
		test.Y[20+i] = 1
	}
	if acc := nearestCentroidAccuracy(train, test, 2); acc < 0.8 {
		t.Fatalf("gender centroid accuracy = %g, want > 0.8", acc)
	}
}

func seqInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}
