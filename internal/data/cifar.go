package data

import (
	"fmt"
	"math"
	"math/rand"

	"mixnn/internal/tensor"
)

// CIFARConfig configures the synthetic CIFAR10 equivalent.
//
// The paper (§6.1.1): 10 classes, 20 participants split into three
// preference groups (6/6/8), each participant's profile composed of 80%
// images from its preferred classes and 20% random images from the other
// classes. The sensitive attribute is the preference group.
type CIFARConfig struct {
	H, W          int     // image size (default 32×32)
	Classes       int     // main-task classes (default 10)
	GroupSizes    []int   // participants per preference group (default 6,6,8)
	TrainPer      int     // training examples per participant (default 200)
	TestPer       int     // test examples per participant (default 40)
	PreferredFrac float64 // fraction drawn from preferred classes (default 0.8)
	Noise         float64 // pixel noise std (default 0.35)
	Seed          int64   // seed for the fixed class templates
}

func (c *CIFARConfig) fillDefaults() {
	setDefault(&c.H, 32)
	setDefault(&c.W, 32)
	setDefault(&c.Classes, 10)
	if c.GroupSizes == nil {
		c.GroupSizes = []int{6, 6, 8}
	}
	setDefault(&c.TrainPer, 200)
	setDefault(&c.TestPer, 40)
	if c.PreferredFrac == 0 {
		c.PreferredFrac = 0.8
	}
	if c.Noise == 0 {
		c.Noise = 0.35
	}
}

// CIFAR generates class-conditional pattern images: each class has a fixed
// smooth template (a sum of random spatial Gaussians per RGB channel) and
// samples are the template plus pixel noise. Non-IID participant profiles
// follow the paper's preference-group construction, which is what induces
// the per-group gradient footprint that ∇Sim detects.
type CIFAR struct {
	cfg       CIFARConfig
	templates []*tensor.Tensor // one [3*H*W] template per class
	groups    [][]int          // preferred classes per group
}

var _ Source = (*CIFAR)(nil)

// NewCIFAR builds the generator; class templates are derived from cfg.Seed.
func NewCIFAR(cfg CIFARConfig) *CIFAR {
	cfg.fillDefaults()
	g := &CIFAR{cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5bd1e995))
	for c := 0; c < cfg.Classes; c++ {
		g.templates = append(g.templates, blobTemplate(rng, 3, cfg.H, cfg.W, 4))
	}
	// Partition the classes into one preferred set per group, round-robin,
	// so groups have disjoint ("specific and non overlapping") preferences.
	nGroups := len(cfg.GroupSizes)
	g.groups = make([][]int, nGroups)
	for c := 0; c < cfg.Classes; c++ {
		g.groups[c%nGroups] = append(g.groups[c%nGroups], c)
	}
	return g
}

// blobTemplate renders a smooth random pattern: per channel, a sum of k
// spatial Gaussians with random centres, widths and signed amplitudes.
func blobTemplate(rng *rand.Rand, ch, h, w, k int) *tensor.Tensor {
	t := tensor.New(ch * h * w)
	d := t.Data()
	for c := 0; c < ch; c++ {
		for b := 0; b < k; b++ {
			cx, cy := rng.Float64()*float64(w), rng.Float64()*float64(h)
			sx, sy := 2+rng.Float64()*float64(w)/3, 2+rng.Float64()*float64(h)/3
			amp := 0.4 + 0.6*rng.Float64()
			if rng.Intn(2) == 0 {
				amp = -amp
			}
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					dx, dy := (float64(x)-cx)/sx, (float64(y)-cy)/sy
					d[(c*h+y)*w+x] += amp * math.Exp(-(dx*dx+dy*dy)/2)
				}
			}
		}
	}
	return t
}

// Name implements Source.
func (g *CIFAR) Name() string { return "cifar10" }

// Input implements Source.
func (g *CIFAR) Input() (int, int, int) { return 3, g.cfg.H, g.cfg.W }

// Classes implements Source.
func (g *CIFAR) Classes() int { return g.cfg.Classes }

// AttrClasses implements Source.
func (g *CIFAR) AttrClasses() int { return len(g.cfg.GroupSizes) }

// AttrName implements Source.
func (g *CIFAR) AttrName(a int) string { return fmt.Sprintf("preference-group-%d", a) }

// Groups returns the preferred main-task classes of each preference group.
func (g *CIFAR) Groups() [][]int {
	out := make([][]int, len(g.groups))
	for i, grp := range g.groups {
		out[i] = append([]int(nil), grp...)
	}
	return out
}

// sampleClass draws one image of the given class.
func (g *CIFAR) sampleClass(class int, rng *rand.Rand, dst []float64) {
	td := g.templates[class].Data()
	for i := range dst {
		dst[i] = td[i] + rng.NormFloat64()*g.cfg.Noise
	}
}

// drawLabel samples a main-task label for a participant in the given group:
// preferred classes with probability PreferredFrac, otherwise uniform over
// the remaining classes.
func (g *CIFAR) drawLabel(group int, rng *rand.Rand) int {
	pref := g.groups[group]
	if rng.Float64() < g.cfg.PreferredFrac {
		return pref[rng.Intn(len(pref))]
	}
	isPref := make(map[int]bool, len(pref))
	for _, c := range pref {
		isPref[c] = true
	}
	for {
		c := rng.Intn(g.cfg.Classes)
		if !isPref[c] {
			return c
		}
	}
}

// sampleProfile generates n examples from a group's preference profile.
func (g *CIFAR) sampleProfile(group, n int, rng *rand.Rand) Dataset {
	dim := 3 * g.cfg.H * g.cfg.W
	ds := NewDataset(n, dim)
	for i := 0; i < n; i++ {
		ds.Y[i] = g.drawLabel(group, rng)
		g.sampleClass(ds.Y[i], rng, ds.X.Data()[i*dim:(i+1)*dim])
	}
	return ds
}

// Participants implements Source: the paper's 20 participants in three
// preference groups of 6/6/8.
func (g *CIFAR) Participants(seed int64) []Participant {
	var out []Participant
	id := 0
	for group, size := range g.cfg.GroupSizes {
		for k := 0; k < size; k++ {
			rng := rand.New(rand.NewSource(seed + int64(id)*7919))
			out = append(out, Participant{
				ID:        id,
				Attribute: group,
				Train:     g.sampleProfile(group, g.cfg.TrainPer, rng),
				Test:      g.sampleProfile(group, g.cfg.TestPer, rng),
			})
			id++
		}
	}
	return out
}

// Auxiliary implements Source: background knowledge drawn from the given
// preference group's profile.
func (g *CIFAR) Auxiliary(attr, n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9 + int64(attr)))
	return g.sampleProfile(attr, n, rng)
}

func setDefault(p *int, v int) {
	if *p == 0 {
		*p = v
	}
}
