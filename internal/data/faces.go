package data

import (
	"math"
	"math/rand"
)

// FacesConfig configures the synthetic face dataset used as the LFW
// substitute. Examples are 1×H×W grayscale face-like images. The main task
// is smile detection (the paper's LFW task); the sensitive attribute is
// gender, encoded as structural differences (hair band, jaw width) that are
// independent of the smile feature.
type FacesConfig struct {
	H, W         int // image size (default 32×32, divisible by 4 for DeepFace)
	Participants int // population size (default 20 as in §6.1.4)
	TrainPer     int // training images per participant (default 160)
	TestPer      int // test images per participant (default 32)
	Noise        float64
	Seed         int64
}

func (c *FacesConfig) fillDefaults() {
	setDefault(&c.H, 32)
	setDefault(&c.W, 32)
	setDefault(&c.Participants, 20)
	setDefault(&c.TrainPer, 160)
	setDefault(&c.TestPer, 32)
	if c.Noise == 0 {
		c.Noise = 0.12
	}
}

// Faces generates structured face images:
//
//	background 0.1, elliptical face at 0.6, two dark eyes,
//	a mouth that curves upward when smiling and stays flat otherwise,
//	a hair band whose thickness and a jaw whose width encode gender.
//
// Per-subject jitter (translation, intensity gain) makes participants
// distinct individuals. The gender features shift every image of a
// participant, so the participant's gradient carries a gender footprint —
// the mechanism ∇Sim needs — while smiles vary within each participant.
type Faces struct {
	cfg FacesConfig
}

var _ Source = (*Faces)(nil)

// NewFaces builds the generator.
func NewFaces(cfg FacesConfig) *Faces {
	cfg.fillDefaults()
	return &Faces{cfg: cfg}
}

// Name implements Source.
func (g *Faces) Name() string { return "lfw" }

// Input implements Source.
func (g *Faces) Input() (int, int, int) { return 1, g.cfg.H, g.cfg.W }

// Classes implements Source (smile / no smile).
func (g *Faces) Classes() int { return 2 }

// AttrClasses implements Source.
func (g *Faces) AttrClasses() int { return 2 }

// AttrName implements Source.
func (g *Faces) AttrName(a int) string {
	if a == 0 {
		return "male"
	}
	return "female"
}

type faceTraits struct {
	dx, dy int     // translation jitter
	gain   float64 // intensity gain
}

func drawFaceTraits(rng *rand.Rand) faceTraits {
	return faceTraits{
		dx:   rng.Intn(5) - 2,
		dy:   rng.Intn(5) - 2,
		gain: 0.85 + 0.3*rng.Float64(),
	}
}

// renderFace writes one face into dst.
func (g *Faces) renderFace(smile, gender int, tr faceTraits, rng *rand.Rand, dst []float64) {
	h, w := g.cfg.H, g.cfg.W
	cx := float64(w)/2 + float64(tr.dx)
	cy := float64(h)/2 + float64(tr.dy)
	// Jaw width encodes gender: male faces are wider.
	rx := float64(w) * 0.34
	if gender == 1 {
		rx *= 0.82
	}
	ry := float64(h) * 0.40

	set := func(x, y int, v float64) {
		if x >= 0 && x < w && y >= 0 && y < h {
			dst[y*w+x] = v
		}
	}

	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			ex := (float64(x) - cx) / rx
			ey := (float64(y) - cy) / ry
			v := 0.1
			if ex*ex+ey*ey <= 1 {
				v = 0.6 * tr.gain
			}
			dst[y*w+x] = v
		}
	}

	// Hair band: thickness encodes gender (female = longer hair → thicker).
	hairRows := 2
	if gender == 1 {
		hairRows = 5
	}
	top := int(cy - ry)
	for r := 0; r < hairRows; r++ {
		y := top + r
		for x := int(cx - rx); x <= int(cx+rx); x++ {
			set(x, y, 0.9*tr.gain)
		}
	}

	// Eyes: two dark spots at fixed face-relative positions.
	eyeY := int(cy - ry*0.25)
	for _, ex := range []int{int(cx - rx*0.45), int(cx + rx*0.45)} {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				set(ex+dx, eyeY+dy, 0.05)
			}
		}
	}

	// Mouth: a horizontal stroke; smiling mouths curve upward at the
	// corners (quadratic dip in image coordinates).
	mouthY := cy + ry*0.45
	halfSpan := rx * 0.5
	for ox := -halfSpan; ox <= halfSpan; ox++ {
		y := mouthY
		if smile == 1 {
			y -= 3 * (ox * ox / (halfSpan * halfSpan)) // corners rise
		}
		set(int(cx+ox), int(y), 0.05)
		set(int(cx+ox), int(y)+1, 0.05)
	}

	// Sensor noise.
	for i := range dst {
		dst[i] += rng.NormFloat64() * g.cfg.Noise
		dst[i] = math.Max(0, math.Min(1.2, dst[i]))
	}
}

// sampleSubject generates n balanced smile/no-smile images for a subject.
func (g *Faces) sampleSubject(gender, n int, tr faceTraits, rng *rand.Rand) Dataset {
	dim := g.cfg.H * g.cfg.W
	ds := NewDataset(n, dim)
	for i := 0; i < n; i++ {
		ds.Y[i] = i % 2 // balanced smile labels
		g.renderFace(ds.Y[i], gender, tr, rng, ds.X.Data()[i*dim:(i+1)*dim])
	}
	ds.Shuffle(rng)
	return ds
}

// Participants implements Source; genders alternate for balance.
func (g *Faces) Participants(seed int64) []Participant {
	out := make([]Participant, 0, g.cfg.Participants)
	for id := 0; id < g.cfg.Participants; id++ {
		rng := rand.New(rand.NewSource(seed + int64(id)*4099))
		gender := id % 2
		tr := drawFaceTraits(rng)
		out = append(out, Participant{
			ID:        id,
			Attribute: gender,
			Train:     g.sampleSubject(gender, g.cfg.TrainPer, tr, rng),
			Test:      g.sampleSubject(gender, g.cfg.TestPer, tr, rng),
		})
	}
	return out
}

// Auxiliary implements Source: images of fresh subjects of one gender.
func (g *Faces) Auxiliary(attr, n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed ^ 0x7f4a7c15 + int64(attr)))
	const auxSubjects = 4
	parts := make([]Dataset, 0, auxSubjects)
	per := (n + auxSubjects - 1) / auxSubjects
	for s := 0; s < auxSubjects; s++ {
		tr := drawFaceTraits(rng)
		parts = append(parts, g.sampleSubject(attr, per, tr, rng))
	}
	merged := Merge(parts...)
	return merged.Subset(rng.Perm(merged.Len())[:n])
}
