package data

import (
	"fmt"
	"math"
	"math/rand"
)

// MotionConfig configures the synthetic motion-sensor dataset used as the
// MotionSense / MobiAct substitute. Examples are windows of 6-channel
// inertial signal (3-axis accelerometer + 3-axis gyroscope) laid out as a
// 1×6×T volume. The main task is activity recognition over the paper's six
// activities; the sensitive attribute is gender.
type MotionConfig struct {
	DatasetName  string  // "motionsense" or "mobiact"
	SampleRate   float64 // Hz: 50 (MotionSense) or 20 (MobiAct)
	T            int     // window length in samples (default 64)
	Participants int     // population size: 24 (MotionSense) or 58 (MobiAct)
	TrainPer     int     // training windows per participant (default 240)
	TestPer      int     // test windows per participant (default 48)
	Noise        float64 // sensor noise std (default 0.15)
	Seed         int64   // seed for activity signatures
}

// MotionSenseConfig returns the MotionSense-shaped configuration
// (50 Hz, 24 participants).
func MotionSenseConfig() MotionConfig {
	return MotionConfig{DatasetName: "motionsense", SampleRate: 50, Participants: 24}
}

// MobiActConfig returns the MobiAct-shaped configuration
// (20 Hz, 58 participants).
func MobiActConfig() MotionConfig {
	return MotionConfig{DatasetName: "mobiact", SampleRate: 20, Participants: 58}
}

func (c *MotionConfig) fillDefaults() {
	if c.DatasetName == "" {
		c.DatasetName = "motionsense"
	}
	if c.SampleRate == 0 {
		c.SampleRate = 50
	}
	setDefault(&c.T, 64)
	setDefault(&c.Participants, 24)
	setDefault(&c.TrainPer, 240)
	setDefault(&c.TestPer, 48)
	if c.Noise == 0 {
		c.Noise = 0.15
	}
}

// activities are the six MotionSense/MobiAct activities shared by both
// datasets (§6.1.1). Gait frequency (Hz) and amplitude are loosely modelled
// on human locomotion; static activities carry orientation information only.
var motionActivities = []struct {
	name string
	freq float64 // dominant gait frequency in Hz
	amp  float64
}{
	{"downstairs", 1.6, 1.1},
	{"upstairs", 1.3, 1.0},
	{"walking", 1.0, 0.8},
	{"jogging", 2.4, 1.6},
	{"sitting", 0, 0.04},
	{"standing", 0, 0.03},
}

// Motion generates harmonic 6-channel windows. The gender attribute scales
// gait frequency (+8%) and amplitude (−15%) and shifts the orientation
// bias — a synthetic stand-in for the systematic gait differences the real
// datasets carry, producing the same kind of distribution shift that ∇Sim's
// gradient fingerprinting exploits.
type Motion struct {
	cfg MotionConfig
	// chanGain/chanPhase give each of the 6 sensor channels its own
	// response to the gait oscillation.
	chanGain  [6]float64
	chanPhase [6]float64
	// orient[activity][channel] is the gravity/orientation bias.
	orient [][6]float64
}

var _ Source = (*Motion)(nil)

// NewMotion builds a generator; activity signatures derive from cfg.Seed.
func NewMotion(cfg MotionConfig) *Motion {
	cfg.fillDefaults()
	g := &Motion{cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x51ed2701))
	for k := 0; k < 6; k++ {
		g.chanGain[k] = 0.5 + rng.Float64()
		g.chanPhase[k] = rng.Float64() * 2 * math.Pi
	}
	g.orient = make([][6]float64, len(motionActivities))
	for a := range motionActivities {
		for k := 0; k < 6; k++ {
			g.orient[a][k] = rng.NormFloat64() * 0.5
		}
	}
	return g
}

// Name implements Source.
func (g *Motion) Name() string { return g.cfg.DatasetName }

// Input implements Source.
func (g *Motion) Input() (int, int, int) { return 1, 6, g.cfg.T }

// Classes implements Source.
func (g *Motion) Classes() int { return len(motionActivities) }

// AttrClasses implements Source.
func (g *Motion) AttrClasses() int { return 2 }

// AttrName implements Source.
func (g *Motion) AttrName(a int) string {
	if a == 0 {
		return "male"
	}
	return "female"
}

// ActivityName returns the main-task class name.
func (g *Motion) ActivityName(class int) string { return motionActivities[class].name }

// subjectTraits holds per-subject variability so participants of the same
// gender still differ from one another.
type subjectTraits struct {
	gain, freqScale float64
	phase           float64
}

func drawTraits(rng *rand.Rand) subjectTraits {
	return subjectTraits{
		gain:      0.9 + 0.2*rng.Float64(),
		freqScale: 0.95 + 0.1*rng.Float64(),
		phase:     rng.Float64() * 2 * math.Pi,
	}
}

// genderFreq and genderAmp encode the synthetic attribute footprint:
// higher step frequency and lower amplitude for gender class 1. The
// magnitudes are chosen so that ∇Sim's gradient fingerprinting reaches the
// paper's reported leakage levels on an unprotected pipeline (§6.3).
func genderFreq(gender int) float64 {
	if gender == 1 {
		return 1.15
	}
	return 1.0
}

func genderAmp(gender int) float64 {
	if gender == 1 {
		return 0.72
	}
	return 1.0
}

// sampleWindow writes one 6×T window of the given activity into dst.
func (g *Motion) sampleWindow(activity, gender int, tr subjectTraits, rng *rand.Rand, dst []float64) {
	act := motionActivities[activity]
	f := act.freq * genderFreq(gender) * tr.freqScale
	a := act.amp * genderAmp(gender) * tr.gain
	dt := 1 / g.cfg.SampleRate
	for k := 0; k < 6; k++ {
		// Gender also tilts the orientation bias (posture shift).
		bias := g.orient[activity][k] * (1 + 0.25*float64(gender))
		for t := 0; t < g.cfg.T; t++ {
			ts := float64(t) * dt
			v := bias + rng.NormFloat64()*g.cfg.Noise
			if f > 0 {
				w := 2 * math.Pi * f * ts
				v += a * g.chanGain[k] * math.Sin(w+tr.phase+g.chanPhase[k])
				v += 0.4 * a * g.chanGain[k] * math.Sin(2*w+tr.phase+2*g.chanPhase[k])
			}
			dst[k*g.cfg.T+t] = v
		}
	}
}

// sampleSubject generates n windows with uniformly-drawn activities for a
// subject of the given gender.
func (g *Motion) sampleSubject(gender, n int, tr subjectTraits, rng *rand.Rand) Dataset {
	dim := 6 * g.cfg.T
	ds := NewDataset(n, dim)
	for i := 0; i < n; i++ {
		ds.Y[i] = rng.Intn(len(motionActivities))
		g.sampleWindow(ds.Y[i], gender, tr, rng, ds.X.Data()[i*dim:(i+1)*dim])
	}
	return ds
}

// Participants implements Source; genders alternate so the population is
// balanced as in the paper's datasets.
func (g *Motion) Participants(seed int64) []Participant {
	out := make([]Participant, 0, g.cfg.Participants)
	for id := 0; id < g.cfg.Participants; id++ {
		rng := rand.New(rand.NewSource(seed + int64(id)*6151))
		gender := id % 2
		tr := drawTraits(rng)
		out = append(out, Participant{
			ID:        id,
			Attribute: gender,
			Train:     g.sampleSubject(gender, g.cfg.TrainPer, tr, rng),
			Test:      g.sampleSubject(gender, g.cfg.TestPer, tr, rng),
		})
	}
	return out
}

// Auxiliary implements Source: windows from fresh subjects of the given
// gender (disjoint from the federated population by seed separation).
func (g *Motion) Auxiliary(attr, n int, seed int64) Dataset {
	if attr < 0 || attr >= 2 {
		panic(fmt.Sprintf("data: motion attribute %d outside [0,2)", attr))
	}
	rng := rand.New(rand.NewSource(seed ^ 0x2545f491 + int64(attr)))
	// Blend several auxiliary subjects so the reference model captures the
	// gender-level (not subject-level) signal.
	const auxSubjects = 4
	parts := make([]Dataset, 0, auxSubjects)
	per := (n + auxSubjects - 1) / auxSubjects
	for s := 0; s < auxSubjects; s++ {
		tr := drawTraits(rng)
		parts = append(parts, g.sampleSubject(attr, per, tr, rng))
	}
	merged := Merge(parts...)
	return merged.Subset(rng.Perm(merged.Len())[:n])
}
