// Package data provides the dataset substrates of the MixNN reproduction.
//
// The paper evaluates on CIFAR10, MotionSense, MobiAct and LFW. Those
// corpora are not available offline, so this package generates synthetic
// equivalents that preserve the properties the evaluation depends on:
//
//   - a learnable main classification task (class-conditional structure),
//   - a sensitive attribute that systematically shifts each participant's
//     local data distribution (the footprint ∇Sim exploits), and
//   - the paper's participant populations and non-IID partitioning.
//
// Every generator is deterministic given its seed. See DESIGN.md §3 for the
// substitution rationale.
package data

import (
	"fmt"
	"math/rand"

	"mixnn/internal/tensor"
)

// Dataset is a supervised dataset: X holds one flat example per row and Y
// the integer class labels.
type Dataset struct {
	X *tensor.Tensor
	Y []int
}

// NewDataset allocates an empty dataset with n rows of width dim.
func NewDataset(n, dim int) Dataset {
	return Dataset{X: tensor.New(maxInt(n, 1), dim), Y: make([]int, n)}
}

// Len returns the number of examples.
func (d Dataset) Len() int { return len(d.Y) }

// Dim returns the example width.
func (d Dataset) Dim() int { return d.X.Dim(1) }

// Batch gathers the rows at the given indices into a new (X, Y) pair.
func (d Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	dim := d.Dim()
	x := tensor.New(maxInt(len(idx), 1), dim)
	y := make([]int, len(idx))
	for bi, i := range idx {
		copy(x.Data()[bi*dim:(bi+1)*dim], d.X.Data()[i*dim:(i+1)*dim])
		y[bi] = d.Y[i]
	}
	return x, y
}

// Subset returns a copy of the rows at the given indices.
func (d Dataset) Subset(idx []int) Dataset {
	x, y := d.Batch(idx)
	return Dataset{X: x, Y: y}
}

// Split partitions the dataset into a training set with ceil(frac*N)
// examples and a test set with the rest, sampling without replacement
// using rng. The paper uses 5/6 train, 1/6 test.
func (d Dataset) Split(frac float64, rng *rand.Rand) (train, test Dataset) {
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("data: split fraction %g outside [0,1]", frac))
	}
	perm := rng.Perm(d.Len())
	nTrain := int(frac*float64(d.Len()) + 0.999999)
	if nTrain > d.Len() {
		nTrain = d.Len()
	}
	return d.Subset(perm[:nTrain]), d.Subset(perm[nTrain:])
}

// Shuffle permutes examples in place using rng.
func (d Dataset) Shuffle(rng *rand.Rand) {
	dim := d.Dim()
	tmp := make([]float64, dim)
	rng.Shuffle(d.Len(), func(i, j int) {
		xi := d.X.Data()[i*dim : (i+1)*dim]
		xj := d.X.Data()[j*dim : (j+1)*dim]
		copy(tmp, xi)
		copy(xi, xj)
		copy(xj, tmp)
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Merge concatenates datasets (which must share example width).
func Merge(ds ...Dataset) Dataset {
	if len(ds) == 0 {
		panic("data: Merge of zero datasets")
	}
	dim := ds[0].Dim()
	total := 0
	for _, d := range ds {
		if d.Dim() != dim {
			panic(fmt.Sprintf("data: Merge width mismatch: %d vs %d", d.Dim(), dim))
		}
		total += d.Len()
	}
	out := NewDataset(total, dim)
	row := 0
	for _, d := range ds {
		copy(out.X.Data()[row*dim:], d.X.Data()[:d.Len()*dim])
		copy(out.Y[row:], d.Y)
		row += d.Len()
	}
	return out
}

// Batches yields mini-batch index slices covering a random permutation of
// the dataset; the last batch may be smaller.
func (d Dataset) Batches(batchSize int, rng *rand.Rand) [][]int {
	if batchSize <= 0 {
		panic(fmt.Sprintf("data: non-positive batch size %d", batchSize))
	}
	perm := rng.Perm(d.Len())
	var out [][]int
	for start := 0; start < len(perm); start += batchSize {
		end := start + batchSize
		if end > len(perm) {
			end = len(perm)
		}
		out = append(out, perm[start:end])
	}
	return out
}

// Participant is one federated-learning client: its local train/test data
// and its sensitive-attribute class (the label ∇Sim tries to infer).
type Participant struct {
	ID        int
	Attribute int
	Train     Dataset
	Test      Dataset
}

// Source abstracts a dataset generator so experiments can run the same
// pipeline over all four benchmark substitutes.
type Source interface {
	// Name identifies the dataset in experiment output ("cifar10", ...).
	Name() string
	// Input returns the example volume (channels, height, width).
	Input() (c, h, w int)
	// Classes returns the number of main-task classes.
	Classes() int
	// AttrClasses returns the number of sensitive-attribute classes.
	AttrClasses() int
	// AttrName returns a human-readable name for an attribute class.
	AttrName(a int) string
	// Participants generates the federated population.
	Participants(seed int64) []Participant
	// Auxiliary generates n examples drawn from the data distribution of
	// one attribute class — the adversary's background knowledge (§3 of
	// the paper: "a public dataset with similar raw data including the
	// sensitive attribute").
	Auxiliary(attr, n int, seed int64) Dataset
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
