// Package privacy implements the comparative baseline of the paper's
// §6.1.3: noisy gradients in the style of local differential privacy.
// Each participant perturbs every scalar of its parameter update with
// Gaussian noise before sending it upstream ("adding a Gaussian noise
// N(0,1) on each scalars of the neural network weights", §6.1.4).
//
// The paper's point — reproduced by the Figure 5/7 experiments — is that
// this protection trades utility for privacy, whereas MixNN does not.
package privacy

import (
	"fmt"
	"math/rand"

	"mixnn/internal/nn"
)

// NoisyTransform perturbs each update with element-wise Gaussian noise
// (it satisfies fl.UpdateTransform).
type NoisyTransform struct {
	// Sigma is the noise standard deviation. The paper uses N(0,1); the
	// ablation sweeps smaller scales. Zero means "use DefaultSigma".
	Sigma float64
}

// DefaultSigma is the paper's noise scale.
const DefaultSigma = 1.0

// Name implements fl.UpdateTransform.
func (t NoisyTransform) Name() string { return "noisy" }

// Apply implements fl.UpdateTransform: returns noisy copies of the updates
// (inputs are not mutated — the client still holds its true model).
func (t NoisyTransform) Apply(updates []nn.ParamSet, rng *rand.Rand) ([]nn.ParamSet, error) {
	if rng == nil {
		return nil, fmt.Errorf("privacy: noisy transform requires a rand source")
	}
	sigma := t.Sigma
	if sigma == 0 {
		sigma = DefaultSigma
	}
	if sigma < 0 {
		return nil, fmt.Errorf("privacy: negative noise scale %g", sigma)
	}
	out := make([]nn.ParamSet, len(updates))
	for i, u := range updates {
		noisy := u.Clone()
		for _, lp := range noisy.Layers {
			for _, tt := range lp.Tensors {
				d := tt.Data()
				for j := range d {
					d[j] += rng.NormFloat64() * sigma
				}
			}
		}
		out[i] = noisy
	}
	return out, nil
}

// ClippedNoisyTransform is the DP-SGD-style variant (an extension beyond
// the paper's baseline): the update delta from the reference model is
// L2-clipped to ClipNorm before Gaussian noise is added, which is the
// standard Gaussian-mechanism calibration.
type ClippedNoisyTransform struct {
	// Reference is the model the deltas are measured against (the global
	// model disseminated this round).
	Reference nn.ParamSet
	// ClipNorm bounds each update's delta L2 norm; must be positive.
	ClipNorm float64
	// Sigma is the noise scale applied after clipping.
	Sigma float64
}

// Name implements fl.UpdateTransform.
func (t ClippedNoisyTransform) Name() string { return "noisy-clipped" }

// Apply implements fl.UpdateTransform.
func (t ClippedNoisyTransform) Apply(updates []nn.ParamSet, rng *rand.Rand) ([]nn.ParamSet, error) {
	if rng == nil {
		return nil, fmt.Errorf("privacy: clipped transform requires a rand source")
	}
	if t.ClipNorm <= 0 {
		return nil, fmt.Errorf("privacy: clip norm must be positive, got %g", t.ClipNorm)
	}
	if t.Sigma < 0 {
		return nil, fmt.Errorf("privacy: negative noise scale %g", t.Sigma)
	}
	if len(t.Reference.Layers) == 0 {
		return nil, fmt.Errorf("privacy: clipped transform requires a reference model")
	}
	out := make([]nn.ParamSet, len(updates))
	for i, u := range updates {
		if !u.Compatible(t.Reference) {
			return nil, fmt.Errorf("privacy: update %d incompatible with reference model", i)
		}
		delta := u.Clone().Sub(t.Reference)
		if norm := delta.Flatten().Norm(); norm > t.ClipNorm {
			delta.Scale(t.ClipNorm / norm)
		}
		for _, lp := range delta.Layers {
			for _, tt := range lp.Tensors {
				d := tt.Data()
				for j := range d {
					d[j] += rng.NormFloat64() * t.Sigma
				}
			}
		}
		out[i] = delta.Add(t.Reference)
	}
	return out, nil
}
