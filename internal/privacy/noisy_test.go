package privacy

import (
	"math"
	"math/rand"
	"testing"

	"mixnn/internal/nn"
	"mixnn/internal/tensor"
)

func randomUpdates(n, size int, rng *rand.Rand) []nn.ParamSet {
	out := make([]nn.ParamSet, n)
	for i := range out {
		out[i] = nn.ParamSet{Layers: []nn.LayerParams{{
			Name:    "l",
			Tensors: []*tensor.Tensor{tensor.New(size).RandN(rng, 0, 1)},
		}}}
	}
	return out
}

func TestNoisyTransformPerturbsWithoutMutating(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	updates := randomUpdates(3, 100, rng)
	originals := make([]nn.ParamSet, len(updates))
	for i, u := range updates {
		originals[i] = u.Clone()
	}

	out, err := NoisyTransform{Sigma: 1}.Apply(updates, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range updates {
		if !updates[i].ApproxEqual(originals[i], 0) {
			t.Fatalf("input %d was mutated", i)
		}
		if out[i].ApproxEqual(originals[i], 1e-9) {
			t.Fatalf("output %d is unperturbed", i)
		}
	}
}

func TestNoisyTransformScale(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	updates := randomUpdates(1, 20000, rng)
	base := updates[0].Flatten()

	out, err := NoisyTransform{Sigma: 0.5}.Apply(updates, rng)
	if err != nil {
		t.Fatal(err)
	}
	noise := out[0].Flatten().Sub(base)
	// Empirical std of the injected noise must be close to sigma.
	std := noise.Norm() / math.Sqrt(float64(noise.Size()))
	if math.Abs(std-0.5) > 0.02 {
		t.Fatalf("noise std = %g, want ~0.5", std)
	}
}

func TestNoisyTransformDefaultSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	updates := randomUpdates(1, 20000, rng)
	base := updates[0].Flatten()
	out, err := NoisyTransform{}.Apply(updates, rng)
	if err != nil {
		t.Fatal(err)
	}
	noise := out[0].Flatten().Sub(base)
	std := noise.Norm() / math.Sqrt(float64(noise.Size()))
	if math.Abs(std-DefaultSigma) > 0.05 {
		t.Fatalf("default noise std = %g, want ~%g (paper's N(0,1))", std, DefaultSigma)
	}
}

func TestNoisyTransformErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	updates := randomUpdates(1, 4, rng)
	if _, err := (NoisyTransform{Sigma: -1}).Apply(updates, rng); err == nil {
		t.Fatal("negative sigma accepted")
	}
	if _, err := (NoisyTransform{}).Apply(updates, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestClippedNoisyTransformClips(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := randomUpdates(1, 50, rng)[0]

	// An update far from the reference must come back within ClipNorm
	// (plus noise, which we disable to isolate clipping).
	far := ref.Clone()
	far.Layers[0].Tensors[0].AddScalar(100)
	out, err := ClippedNoisyTransform{Reference: ref, ClipNorm: 1, Sigma: 0}.Apply([]nn.ParamSet{far}, rng)
	if err != nil {
		t.Fatal(err)
	}
	delta := out[0].Clone().Sub(ref).Flatten().Norm()
	if math.Abs(delta-1) > 1e-9 {
		t.Fatalf("clipped delta norm = %g, want 1", delta)
	}

	// An update within the ball must pass through unchanged (sigma 0).
	near := ref.Clone()
	near.Layers[0].Tensors[0].Data()[0] += 0.1
	out, err = ClippedNoisyTransform{Reference: ref, ClipNorm: 1, Sigma: 0}.Apply([]nn.ParamSet{near}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].ApproxEqual(near, 1e-12) {
		t.Fatal("in-ball update was altered")
	}
}

func TestClippedNoisyTransformErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ref := randomUpdates(1, 4, rng)[0]
	u := randomUpdates(1, 4, rng)

	tests := []struct {
		name string
		tr   ClippedNoisyTransform
	}{
		{"zero clip", ClippedNoisyTransform{Reference: ref, ClipNorm: 0}},
		{"negative sigma", ClippedNoisyTransform{Reference: ref, ClipNorm: 1, Sigma: -1}},
		{"no reference", ClippedNoisyTransform{ClipNorm: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.tr.Apply(u, rng); err == nil {
				t.Fatal("no error")
			}
		})
	}

	incompatible := randomUpdates(1, 9, rng)
	if _, err := (ClippedNoisyTransform{Reference: ref, ClipNorm: 1}).Apply(incompatible, rng); err == nil {
		t.Fatal("incompatible update accepted")
	}
}
