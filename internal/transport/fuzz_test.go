package transport

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"unicode/utf8"
)

// FuzzEnvelopeRoundtrip checks that typed request envelopes survive the
// HTTP wire form losslessly: whatever a typed sender puts into an
// UpdateRequest / HopRequest / BatchRequest arrives bit-identical in
// the typed handler on the far side — bodies, ids, sender identity,
// sequence numbers, hop depth and secrets. This is the encode/decode
// contract bit-compatibility with pre-transport binaries rests on: the
// HTTP client and the HTTP adapter are exact inverses over the header
// vocabulary of package wire.
func FuzzEnvelopeRoundtrip(f *testing.F) {
	f.Add([]byte("update"), "client-1", "batch-id", "sender-a", uint64(3), uint8(2), "secret", true)
	f.Add([]byte{}, "", "", "", uint64(0), uint8(0), "", false)
	f.Add([]byte{0xff, 0x00, 0x7f}, "c", "id", "s", uint64(1<<63), uint8(9), "tok", true)
	f.Fuzz(func(t *testing.T, body []byte, clientID, batchID, sender string, seq uint64, hop uint8, secret string, hasSeq bool) {
		// Header values must be valid header strings or net/http refuses
		// the request client-side; restrict the fuzzed strings the way
		// real ids are restricted (token-ish, no control bytes).
		for _, s := range []string{clientID, batchID, sender, secret} {
			if !validHeaderValue(s) {
				t.Skip()
			}
		}
		srv := &fakeServer{receipt: Receipt{Shard: -1}}
		hsrv := httptest.NewServer(NewHandler(srv))
		defer hsrv.Close()
		tr := NewHTTP(hsrv.Client())
		ctx := context.Background()

		if _, err := tr.SendUpdate(ctx, hsrv.URL, UpdateRequest{Body: body, ClientID: clientID}); err != nil {
			t.Fatalf("update: %v", err)
		}
		got := srv.lastUpdate
		if !bytes.Equal(got.Body, body) || got.ClientID != clientID {
			t.Fatalf("update round trip: sent (%q, %q), got (%q, %q)", body, clientID, got.Body, got.ClientID)
		}

		hopReq := HopRequest{Body: body, Hop: int(hop), Secret: secret}
		if _, err := tr.Hop(ctx, hsrv.URL, hopReq); err != nil {
			t.Fatalf("hop: %v", err)
		}
		if gh := srv.lastHop; !bytes.Equal(gh.Body, body) || gh.Hop != int(hop) || gh.Secret != secret {
			t.Fatalf("hop round trip: sent %+v, got %+v", hopReq, *gh)
		}

		bReq := BatchRequest{Body: body, Hop: int(hop), Secret: secret, ID: batchID, Sender: sender, Seq: seq, HasSeq: hasSeq}
		if _, err := tr.SendBatch(ctx, hsrv.URL, bReq); err != nil {
			t.Fatalf("batch: %v", err)
		}
		gb := srv.lastBatch
		if !bytes.Equal(gb.Body, body) || gb.ID != batchID {
			t.Fatalf("batch body/id round trip: sent %+v, got %+v", bReq, *gb)
		}
		// Wire compatibility folds some field combinations (that is the
		// pre-transport sender's exact behaviour, not loss): hop metadata
		// only travels when Hop > 0, and sender/seq only travel together.
		if bReq.Hop > 0 {
			if gb.Hop != bReq.Hop || gb.Secret != bReq.Secret {
				t.Fatalf("batch hop leg: sent %+v, got %+v", bReq, *gb)
			}
		} else if gb.Hop != 0 || gb.Secret != "" {
			t.Fatalf("batch server leg leaked hop metadata: %+v", *gb)
		}
		if bReq.HasSeq && bReq.Sender != "" {
			if !gb.HasSeq || gb.Sender != sender || gb.Seq != seq {
				t.Fatalf("batch sender watermark: sent %+v, got %+v", bReq, *gb)
			}
		} else if gb.HasSeq {
			t.Fatalf("batch grew a sender watermark: %+v", *gb)
		}
	})
}

// validHeaderValue reports whether s survives as an HTTP header value
// (printable, no separators net/http would reject or fold).
func validHeaderValue(s string) bool {
	if !utf8.ValidString(s) {
		return false
	}
	for _, r := range s {
		if r < 0x21 || r > 0x7e {
			return false
		}
	}
	return true
}
