package transport

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mixnn/internal/wire"
)

// HTTP is the network Transport: it speaks the exact wire protocol of
// the pre-transport binaries (paths, headers, content types — see
// package wire), so a tier using it interoperates with old peers in
// both directions. The only addition is the X-Mixnn-Proto version tag,
// which old receivers ignore and old senders omit (= version 1).
type HTTP struct {
	c *http.Client
}

// NewHTTP builds the HTTP transport; httpc may be nil for a default
// client with a 60 s timeout.
func NewHTTP(httpc *http.Client) *HTTP {
	if httpc == nil {
		httpc = &http.Client{Timeout: 60 * time.Second}
	}
	return &HTTP{c: httpc}
}

// do runs one request, mapping non-2xx responses onto StatusError and
// returning the body reader to the caller (closed on error).
//
// Version negotiation is one-sided by design: the RECEIVER refuses
// requests claiming a future version (it cannot honour semantics it
// does not implement), but a response's version stamp is purely
// informational — a newer peer that accepted our older request has
// already served it compatibly, and discarding the acknowledgement
// would turn a success into a retry.
func (t *HTTP) do(req *http.Request) (*http.Response, error) {
	req.Header.Set(wire.HeaderProto, strconv.Itoa(wire.ProtoV1))
	resp, err := t.c.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		return resp, nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	se := &StatusError{
		Code:           resp.StatusCode,
		Stale:          resp.Header.Get(wire.HeaderStale) != "",
		SessionUnknown: resp.Header.Get(wire.HeaderSessionUnknown) != "",
		Msg:            string(bytes.TrimSpace(msg)),
	}
	// Retry-After rides admission rejections (429); the delay-seconds
	// form only — the HTTP-date form is not worth a time parse here.
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return nil, se
}

// post builds and runs one POST, discarding the response body.
func (t *HTTP) post(ctx context.Context, url, contentType string, body []byte, hdr func(http.Header)) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if hdr != nil {
		hdr(req.Header)
	}
	resp, err := t.do(req)
	if err != nil {
		return nil, err
	}
	resp.Body.Close()
	return resp, nil
}

// hopHeaders stamps the cascade depth and bearer secret of a hop leg.
func hopHeaders(hop int, secret string) func(http.Header) {
	return func(h http.Header) {
		h.Set(wire.HeaderHop, strconv.Itoa(hop))
		if secret != "" {
			h.Set("Authorization", "Bearer "+secret)
		}
	}
}

// SendUpdate implements Transport.
func (t *HTTP) SendUpdate(ctx context.Context, ep string, req UpdateRequest) (Receipt, error) {
	resp, err := t.post(ctx, ep+"/v1/update", wire.ContentTypeUpdate, req.Body, func(h http.Header) {
		if req.ClientID != "" {
			h.Set(wire.HeaderClient, req.ClientID)
		}
	})
	if err != nil {
		return Receipt{Shard: -1}, err
	}
	return receiptFrom(resp), nil
}

// Hop implements Transport.
func (t *HTTP) Hop(ctx context.Context, ep string, req HopRequest) (Receipt, error) {
	resp, err := t.post(ctx, ep+"/v1/hop", wire.ContentTypeUpdate, req.Body, hopHeaders(req.Hop, req.Secret))
	if err != nil {
		return Receipt{Shard: -1}, err
	}
	return receiptFrom(resp), nil
}

// SendBatch implements Transport. The hop depth and secret only travel
// on cascade/relay legs (Hop > 0), exactly as the pre-transport sender
// behaved on the plaintext server leg.
func (t *HTTP) SendBatch(ctx context.Context, ep string, req BatchRequest) (Receipt, error) {
	resp, err := t.post(ctx, ep+"/v1/batch", wire.ContentTypeBatch, req.Body, func(h http.Header) {
		if req.Hop > 0 {
			hopHeaders(req.Hop, req.Secret)(h)
		}
		if req.ID != "" {
			h.Set(wire.HeaderBatch, req.ID)
		}
		if req.HasSeq && req.Sender != "" {
			h.Set(wire.HeaderSender, req.Sender)
			h.Set(wire.HeaderBatchSeq, strconv.FormatUint(req.Seq, 10))
		}
	})
	if err != nil {
		return Receipt{Shard: -1}, err
	}
	r := receiptFrom(resp)
	r.Duplicate = resp.StatusCode == http.StatusOK
	return r, nil
}

// receiptFrom reads the shard diagnostic off an accepted response.
func receiptFrom(resp *http.Response) Receipt {
	shard := -1
	if v := resp.Header.Get(wire.HeaderShard); v != "" {
		if s, err := strconv.Atoi(v); err == nil {
			shard = s
		}
	}
	return Receipt{Shard: shard}
}

// get runs one GET through the status mapping.
func (t *HTTP) get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return t.do(req)
}

// Attest implements Transport.
func (t *HTTP) Attest(ctx context.Context, ep string, nonce []byte) (wire.AttestationResponse, error) {
	var ar wire.AttestationResponse
	resp, err := t.get(ctx, fmt.Sprintf("%s/v1/attestation?nonce=%s", ep, hex.EncodeToString(nonce)))
	if err != nil {
		return ar, err
	}
	defer resp.Body.Close()
	if err := wire.DecodeJSON(resp.Body, &ar); err != nil {
		return ar, err
	}
	return ar, nil
}

// Model implements Transport.
func (t *HTTP) Model(ctx context.Context, ep string) (ModelResponse, error) {
	resp, err := t.get(ctx, ep+"/v1/model")
	if err != nil {
		return ModelResponse{}, err
	}
	defer resp.Body.Close()
	round, err := strconv.Atoi(resp.Header.Get(wire.HeaderRound))
	if err != nil {
		return ModelResponse{}, fmt.Errorf("transport: missing round header: %w", err)
	}
	body, err := wire.ReadBody(resp.Body)
	if err != nil {
		return ModelResponse{}, err
	}
	return ModelResponse{Round: round, Body: body}, nil
}

// Topology implements Transport: GET when req.Directive is nil, POST
// otherwise.
func (t *HTTP) Topology(ctx context.Context, ep string, req TopologyRequest) (wire.TopologyStatus, error) {
	var st wire.TopologyStatus
	var hreq *http.Request
	var err error
	if req.Directive == nil {
		hreq, err = http.NewRequestWithContext(ctx, http.MethodGet, ep+"/v1/admin/topology", nil)
	} else {
		var body []byte
		if body, err = json.Marshal(req.Directive); err != nil {
			return st, err
		}
		hreq, err = http.NewRequestWithContext(ctx, http.MethodPost, ep+"/v1/admin/topology", bytes.NewReader(body))
		if hreq != nil {
			hreq.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return st, err
	}
	if req.Secret != "" {
		hreq.Header.Set("Authorization", "Bearer "+req.Secret)
	}
	resp, err := t.do(hreq)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if err := wire.DecodeJSON(resp.Body, &st); err != nil {
		return st, err
	}
	return st, nil
}

// Discover implements Transport.
func (t *HTTP) Discover(ctx context.Context, ep string) (wire.DiscoverResponse, error) {
	var dr wire.DiscoverResponse
	resp, err := t.get(ctx, ep+"/v1/discover")
	if err != nil {
		return dr, err
	}
	defer resp.Body.Close()
	if err := wire.DecodeJSON(resp.Body, &dr); err != nil {
		return dr, err
	}
	return dr, nil
}

// Status implements Transport, sniffing which status form the peer
// serves: proxies report a "shards" array, aggregation servers an
// "expect_per_round" counter.
func (t *HTTP) Status(ctx context.Context, ep string) (StatusResponse, error) {
	resp, err := t.get(ctx, ep+"/v1/status")
	if err != nil {
		return StatusResponse{}, err
	}
	defer resp.Body.Close()
	raw, err := wire.ReadBody(resp.Body)
	if err != nil {
		return StatusResponse{}, err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		return StatusResponse{}, fmt.Errorf("transport: decode status: %w", err)
	}
	if _, ok := probe["shards"]; ok {
		var ps wire.ShardedProxyStatus
		if err := json.Unmarshal(raw, &ps); err != nil {
			return StatusResponse{}, fmt.Errorf("transport: decode proxy status: %w", err)
		}
		return StatusResponse{Proxy: &ps}, nil
	}
	var ss wire.ServerStatus
	if err := json.Unmarshal(raw, &ss); err != nil {
		return StatusResponse{}, fmt.Errorf("transport: decode server status: %w", err)
	}
	return StatusResponse{Server: &ss}, nil
}
