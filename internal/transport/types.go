package transport

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"time"

	"mixnn/internal/enclave"
	"mixnn/internal/wire"
)

// UpdateRequest is one model update on its way into a tier: an enclave
// ciphertext on the participant leg, a plaintext encoded ParamSet on
// the server leg. The body's ownership transfers to the receiver — the
// caller must not mutate it after the send (Loopback hands it over
// without a copy).
type UpdateRequest struct {
	Body []byte
	// ClientID is the participant's pseudonymous id (wire.HeaderClient);
	// sharded proxies use it for sticky routing. Empty = anonymous.
	ClientID string
}

// HopRequest is one re-encrypted mixed update on the proxy→proxy
// cascade leg.
type HopRequest struct {
	Body []byte
	// Hop is the cascade depth to stamp (wire.HeaderHop); 0 is promoted
	// to 1 by the receiver, as the wire protocol specifies.
	Hop int
	// Secret is the receiver's inter-proxy bearer secret, if it requires
	// one.
	Secret string
}

// BatchRequest is a whole drained round in one request: an encoded
// wire.BatchEnvelope, hop-wrapped for the receiver's enclave on cascade
// and relay legs, plaintext on the server leg.
type BatchRequest struct {
	Body []byte
	// Hop is the cascade depth (0 = the plaintext server leg, where the
	// wire protocol carries no depth).
	Hop int
	// Secret is the receiver's inter-proxy bearer secret, if any (only
	// sent on hop legs, like the depth).
	Secret string
	// ID is the batch idempotency id (wire.HeaderBatch): deterministic
	// across redeliveries so the receiver can drop duplicates.
	ID string
	// Sender and Seq identify the sending outbox and the entry's
	// sequence number (wire.HeaderSender / wire.HeaderBatchSeq), letting
	// the receiver recognise redeliveries that aged out of its dedup
	// window. HasSeq distinguishes "no sender identity" from seq 0.
	Sender string
	Seq    uint64
	HasSeq bool
}

// Receipt acknowledges an accepted send.
type Receipt struct {
	// Shard is the mixing shard that ingested the update (diagnostics;
	// wire.HeaderShard), -1 when the receiver does not report one.
	Shard int
	// Duplicate reports that the receiver had already applied this batch
	// (idempotency-id dedup) and acknowledged without reprocessing.
	Duplicate bool
}

// ModelResponse carries the aggregation server's global model.
type ModelResponse struct {
	// Round is the completed-round counter the model belongs to.
	Round int
	// Body is the encoded ParamSet.
	Body []byte
}

// TopologyRequest reads or reshapes a proxy's routing plane. A nil
// Directive reads; a non-nil one stages it for the next round close.
type TopologyRequest struct {
	Directive *wire.TopologyDirective
	// Secret is the proxy's inter-proxy secret (the admin surface is
	// gated on it).
	Secret string
}

// StatusResponse is a tier's status report. Exactly one field is set:
// proxies report ShardedProxyStatus, aggregation servers ServerStatus.
type StatusResponse struct {
	Proxy  *wire.ShardedProxyStatus
	Server *wire.ServerStatus
}

// StatusError is an application-level rejection: the typed form of a
// non-2xx response. Transports return it so callers classify retry
// policy on the code instead of re-parsing wire artefacts; servers
// return it so every transport renders the same rejection.
type StatusError struct {
	// Code is the rejection class, in HTTP status-code vocabulary (the
	// wire protocol's native taxonomy, meaningful over Loopback too).
	Code int
	// Stale marks a 409 as a stale-redelivery rejection
	// (wire.HeaderStale): permanent, unlike the retryable in-flight 409.
	Stale bool
	// SessionUnknown marks a 428 as a crypto-session rejection
	// (wire.HeaderSessionUnknown): the receiver's enclave no longer
	// holds the ciphertext's session, nothing was ingested, and the
	// sender recovers by re-establishing with a full wrap and resending.
	SessionUnknown bool
	// RetryAfter is the peer's backoff hint on a 429 admission
	// rejection (the standard Retry-After header over HTTP, carried
	// directly over Loopback): how long the sender should wait before
	// retrying here. Zero means no hint.
	RetryAfter time.Duration
	// Msg is the human-readable rejection reason.
	Msg string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("transport: peer rejected request: %d %s", e.Code, e.Msg)
}

// Errorf builds a StatusError with a formatted message.
func Errorf(code int, format string, args ...any) *StatusError {
	return &StatusError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// AsStatus unwraps a StatusError from err, nil if err carries none.
func AsStatus(err error) *StatusError {
	var se *StatusError
	if errors.As(err, &se) {
		return se
	}
	return nil
}

// SessionRejected reports whether err is the typed crypto-session
// rejection: the receiver provably ingested nothing, and the sender
// should re-establish its session (a fresh RSA-wrapped key) and resend
// the same material.
func SessionRejected(err error) bool {
	se := AsStatus(err)
	return se != nil && se.SessionUnknown
}

// Unreached reports whether err proves the request never reached the
// peer — an ErrUnreachable (Loopback name miss) or an HTTP dial
// failure (connection refused, no route, DNS, or a dial TIMEOUT: a
// blackholed host that never answers the SYN still means no request
// bytes were sent), or an ErrBusy rejection at a full ingress queue
// (turned away at the door before any handler ran). Timeouts and
// failures AFTER the connection was established are NOT unreached: the
// request may have been delivered and processed, so a sender must
// treat them as ambiguous rather than safely retryable elsewhere.
func Unreached(err error) bool {
	if errors.Is(err, ErrUnreachable) || errors.Is(err, ErrBusy) {
		return true
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		// The dial check must run before the timeout check: a dial that
		// timed out is still a dial — nothing was sent.
		var oe *net.OpError
		if errors.As(ue.Err, &oe) {
			return oe.Op == "dial"
		}
	}
	return false
}

// CheckBody enforces the wire body bound on a typed request body. The
// HTTP adapter's bounded read already guarantees it on that path; typed
// servers call it so Loopback requests face the same limit.
func CheckBody(body []byte) error {
	if len(body) > wire.MaxBodyBytes {
		return Errorf(http.StatusBadRequest, "wire: body exceeds %d bytes", wire.MaxBodyBytes)
	}
	return nil
}

// FetchReport draws a fresh nonce, queries ep's attestation endpoint
// through tr and decodes the report. Participants and cascade/relay
// proxies share this handshake; verifying the report (against the
// pinned authority and expected measurement) stays with the caller.
func FetchReport(ctx context.Context, tr Transport, ep string) (enclave.Report, []byte, error) {
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return enclave.Report{}, nil, fmt.Errorf("transport: attestation nonce: %w", err)
	}
	ar, err := tr.Attest(ctx, ep, nonce)
	if err != nil {
		return enclave.Report{}, nil, err
	}
	rep, err := DecodeReport(ar)
	if err != nil {
		return enclave.Report{}, nil, err
	}
	return rep, nonce, nil
}

// DecodeReport converts the wire form of an attestation response into
// an enclave report.
func DecodeReport(ar wire.AttestationResponse) (enclave.Report, error) {
	var rep enclave.Report
	meas, err := hex.DecodeString(ar.MeasurementHex)
	if err != nil || len(meas) != 32 {
		return rep, fmt.Errorf("transport: malformed measurement in report")
	}
	copy(rep.Measurement[:], meas)
	if rep.Nonce, err = hex.DecodeString(ar.NonceHex); err != nil {
		return rep, fmt.Errorf("transport: malformed nonce in report")
	}
	rep.PubKeyDER = ar.PubKeyDER
	rep.Signature = ar.Signature
	return rep, nil
}

// bearerToken extracts the token of a Bearer Authorization header. A
// non-empty header WITHOUT the scheme prefix yields the empty string,
// which a secret-gated endpoint rejects — the pre-transport handlers
// compared the whole header against "Bearer "+secret, so a bare secret
// never authorized, and the typed adapter must not widen that.
func bearerToken(h http.Header) string {
	const prefix = "Bearer "
	v := h.Get("Authorization")
	if len(v) >= len(prefix) && v[:len(prefix)] == prefix {
		return v[len(prefix):]
	}
	return ""
}
