package transport

import (
	"bytes"
	"encoding/hex"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"mixnn/internal/wire"
)

// MetricsSource is the optional capability a Server may implement to
// serve operator metrics: WriteMetrics renders Prometheus text
// exposition, or returns ErrNotSupported when the tier runs with
// metrics disabled (the HTTP adapter answers 404 either way — same
// wire shape as a binary without the endpoint).
type MetricsSource interface {
	WriteMetrics(w io.Writer) error
}

// NewHandler adapts a typed Server onto net/http with the exact wire
// behaviour the pre-transport handlers had: same routes, headers,
// status codes and rejection messages. Wire-level validation that the
// typed protocol makes unrepresentable — a forged X-Mixnn-Hop on the
// participant endpoint, a malformed depth, a bad nonce encoding — lives
// here, where the wire form still exists.
func NewHandler(s Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/update", func(w http.ResponseWriter, r *http.Request) {
		if !checkProto(w, r) {
			return
		}
		if r.Header.Get(wire.HeaderHop) != "" {
			// Participants must not forge cascade depth: a forged header
			// would be stamped +1 onto every update their round emits and
			// could poison the whole round at the next hop's depth check.
			http.Error(w, wire.HeaderHop+" not allowed on the participant endpoint", http.StatusBadRequest)
			return
		}
		body, err := wire.ReadBody(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rcpt, err := s.HandleUpdate(r.Context(), UpdateRequest{Body: body, ClientID: r.Header.Get(wire.HeaderClient)})
		writeReceipt(w, rcpt, err)
	})
	mux.HandleFunc("POST /v1/hop", func(w http.ResponseWriter, r *http.Request) {
		if !checkProto(w, r) {
			return
		}
		hop, err := wire.ParseHop(r.Header)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		body, err := wire.ReadBody(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rcpt, err := s.HandleHop(r.Context(), HopRequest{Body: body, Hop: hop, Secret: bearerToken(r.Header)})
		writeReceipt(w, rcpt, err)
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		if !checkProto(w, r) {
			return
		}
		hop, err := wire.ParseHop(r.Header)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req := BatchRequest{
			Hop:    hop,
			Secret: bearerToken(r.Header),
			ID:     r.Header.Get(wire.HeaderBatch),
			Sender: r.Header.Get(wire.HeaderSender),
		}
		if seqStr := r.Header.Get(wire.HeaderBatchSeq); req.Sender != "" && seqStr != "" {
			if v, err := strconv.ParseUint(seqStr, 10, 64); err == nil {
				req.Seq, req.HasSeq = v, true
			}
		}
		if req.Body, err = wire.ReadBody(r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rcpt, err := s.HandleBatch(r.Context(), req)
		if err != nil {
			writeError(w, r, err)
			return
		}
		if rcpt.Duplicate {
			w.WriteHeader(http.StatusOK) // already applied; ack the duplicate
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("GET /v1/attestation", func(w http.ResponseWriter, r *http.Request) {
		if !checkProto(w, r) {
			return
		}
		nonce, err := hex.DecodeString(r.URL.Query().Get("nonce"))
		if err != nil || len(nonce) == 0 {
			http.Error(w, "missing or invalid nonce", http.StatusBadRequest)
			return
		}
		ar, err := s.HandleAttest(r.Context(), nonce)
		if err != nil {
			writeError(w, r, err)
			return
		}
		wire.WriteJSON(w, ar)
	})
	mux.HandleFunc("GET /v1/model", func(w http.ResponseWriter, r *http.Request) {
		if !checkProto(w, r) {
			return
		}
		m, err := s.HandleModel(r.Context())
		if err != nil {
			writeError(w, r, err)
			return
		}
		w.Header().Set("Content-Type", wire.ContentTypeUpdate)
		w.Header().Set(wire.HeaderRound, strconv.Itoa(m.Round))
		w.Write(m.Body)
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		if !checkProto(w, r) {
			return
		}
		st, err := s.HandleStatus(r.Context())
		if err != nil {
			writeError(w, r, err)
			return
		}
		switch {
		case st.Proxy != nil:
			wire.WriteJSON(w, st.Proxy)
		case st.Server != nil:
			wire.WriteJSON(w, st.Server)
		default:
			http.Error(w, "empty status", http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /v1/discover", func(w http.ResponseWriter, r *http.Request) {
		if !checkProto(w, r) {
			return
		}
		dr, err := s.HandleDiscover(r.Context())
		if err != nil {
			writeError(w, r, err)
			return
		}
		wire.WriteJSON(w, dr)
	})
	if ms, ok := s.(MetricsSource); ok {
		// The metrics endpoint is an optional capability, not part of the
		// typed Server contract: a tier without a registry simply has no
		// route, and the adapter's mux answers 404 — the same wire shape
		// ErrNotSupported renders.
		mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
			if !checkProto(w, r) {
				return
			}
			// Render into a buffer first: a source with metrics disabled
			// returns ErrNotSupported, which must become a clean 404 — and
			// headers cannot be unsent.
			var buf bytes.Buffer
			if err := ms.WriteMetrics(&buf); err != nil {
				writeError(w, r, err)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write(buf.Bytes())
		})
	}
	mux.HandleFunc("GET /v1/admin/topology", func(w http.ResponseWriter, r *http.Request) {
		if !checkProto(w, r) {
			return
		}
		st, err := s.HandleTopology(r.Context(), TopologyRequest{Secret: bearerToken(r.Header)})
		if err != nil {
			writeError(w, r, err)
			return
		}
		wire.WriteJSON(w, st)
	})
	mux.HandleFunc("POST /v1/admin/topology", func(w http.ResponseWriter, r *http.Request) {
		if !checkProto(w, r) {
			return
		}
		var d wire.TopologyDirective
		if err := wire.DecodeJSON(r.Body, &d); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		st, err := s.HandleTopology(r.Context(), TopologyRequest{Directive: &d, Secret: bearerToken(r.Header)})
		if err != nil {
			writeError(w, r, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		wire.WriteJSON(w, st)
	})
	return protoStamp(mux)
}

// protoStamp tags every response with the protocol version this binary
// speaks (old clients ignore the header).
func protoStamp(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(wire.HeaderProto, strconv.Itoa(wire.ProtoV1))
		h.ServeHTTP(w, r)
	})
}

// checkProto rejects requests claiming a protocol version this binary
// cannot serve. A missing header is version 1 (old senders), so old
// peers pass untouched.
func checkProto(w http.ResponseWriter, r *http.Request) bool {
	p, err := wire.ParseProto(r.Header)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	if p > wire.ProtoV1 {
		// 426 is in the permanent 4xx class senders quarantine on: a
		// version mismatch can never succeed on retry.
		http.Error(w, "peer protocol version not supported", http.StatusUpgradeRequired)
		return false
	}
	return true
}

// writeReceipt renders an ingress acknowledgement: the shard diagnostic
// plus 202, or the typed rejection.
func writeReceipt(w http.ResponseWriter, rcpt Receipt, err error) {
	if err != nil {
		writeError(w, nil, err)
		return
	}
	if rcpt.Shard >= 0 {
		w.Header().Set(wire.HeaderShard, strconv.Itoa(rcpt.Shard))
	}
	w.WriteHeader(http.StatusAccepted)
}

// writeError renders a typed rejection with the wire protocol's exact
// vocabulary: StatusError code + optional stale marker, 404 for
// operations this tier does not serve, 500 for anything else.
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, ErrNotSupported) {
		if r != nil {
			http.NotFound(w, r)
		} else {
			http.Error(w, "404 page not found", http.StatusNotFound)
		}
		return
	}
	if se := AsStatus(err); se != nil {
		if se.Stale {
			w.Header().Set(wire.HeaderStale, "1")
		}
		if se.SessionUnknown {
			w.Header().Set(wire.HeaderSessionUnknown, "1")
		}
		if se.RetryAfter > 0 {
			// Delay-seconds form, rounded up: a sub-second hint must not
			// truncate to an immediate-retry 0.
			secs := int((se.RetryAfter + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		http.Error(w, se.Msg, se.Code)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}
