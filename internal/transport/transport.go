// Package transport is the typed communication layer between MixNN
// tiers. Every leg of the deployment — participant→proxy, proxy→proxy
// cascade, relay legs of a multi-process topology, proxy→aggregation
// server, and the admin plane — goes through one Transport interface
// with typed request/response envelopes, instead of each caller
// hand-rolling HTTP requests and header strings.
//
// Two implementations ship:
//
//   - HTTP speaks the bit-compatible wire protocol of the pre-transport
//     binaries (same paths, headers and content types, as documented in
//     package wire), so a new proxy interoperates with an old one in
//     either direction. Version negotiation rides the X-Mixnn-Proto
//     header: absent means version 1, which is what old binaries imply.
//   - Loopback dispatches to in-process Server implementations through a
//     name registry, with zero serialization overhead: request bodies
//     (already encrypted or encoded — that cost is inherent) are handed
//     to the receiver without HTTP framing, header encoding or a socket
//     copy. It makes the full mixing pipeline benchmarkable at hardware
//     speed and lets tests and experiments run a multi-tier deployment
//     in one process.
//
// The receiving side of the protocol is the Server interface; NewHandler
// adapts any Server onto net/http with exactly the wire behaviour the
// pre-transport handlers had, so HTTP becomes one codec of the typed
// protocol rather than the protocol itself.
package transport

import (
	"context"
	"errors"

	"mixnn/internal/wire"
)

// Transport is the client side of the typed inter-tier protocol. ep is
// the peer's endpoint: a base URL for HTTP, a registered name for
// Loopback.
//
// Methods return *StatusError for application-level rejections (the
// typed form of a non-2xx response) and ordinary errors for transport
// failures (peer unreachable) — the distinction callers classify retry
// policy on.
type Transport interface {
	// SendUpdate posts one model update: an enclave ciphertext on the
	// participant→proxy leg, a plaintext encoded ParamSet on the
	// proxy→server leg.
	SendUpdate(ctx context.Context, ep string, req UpdateRequest) (Receipt, error)
	// Hop posts one re-encrypted mixed update to the next proxy of a
	// cascade.
	Hop(ctx context.Context, ep string, req HopRequest) (Receipt, error)
	// SendBatch posts a whole drained round in one request.
	SendBatch(ctx context.Context, ep string, req BatchRequest) (Receipt, error)
	// Attest fetches the peer enclave's attestation report bound to the
	// caller's nonce.
	Attest(ctx context.Context, ep string, nonce []byte) (wire.AttestationResponse, error)
	// Model fetches the aggregation server's current global model.
	Model(ctx context.Context, ep string) (ModelResponse, error)
	// Topology reads (nil Directive) or stages (non-nil) the peer's
	// routing-plane topology.
	Topology(ctx context.Context, ep string, req TopologyRequest) (wire.TopologyStatus, error)
	// Status fetches the peer's status report (proxy or server form).
	Status(ctx context.Context, ep string) (StatusResponse, error)
	// Discover fetches the peer's control-plane advertisement: its peer
	// list, topology epoch, load signals and health score. SDKs
	// bootstrap and re-rank their failover lists from it.
	Discover(ctx context.Context, ep string) (wire.DiscoverResponse, error)
}

// Server is the receiving side of the typed protocol: what a mixing
// proxy or an aggregation server implements once, to be served over any
// Transport. An operation a given tier does not provide returns
// ErrNotSupported (the aggregation server has no cascade ingress or
// attestation; the proxy serves no model).
type Server interface {
	HandleUpdate(ctx context.Context, req UpdateRequest) (Receipt, error)
	HandleHop(ctx context.Context, req HopRequest) (Receipt, error)
	HandleBatch(ctx context.Context, req BatchRequest) (Receipt, error)
	HandleAttest(ctx context.Context, nonce []byte) (wire.AttestationResponse, error)
	HandleModel(ctx context.Context) (ModelResponse, error)
	HandleTopology(ctx context.Context, req TopologyRequest) (wire.TopologyStatus, error)
	HandleStatus(ctx context.Context) (StatusResponse, error)
	HandleDiscover(ctx context.Context) (wire.DiscoverResponse, error)
}

// ErrNotSupported marks an operation the receiving tier does not serve;
// the HTTP adapter renders it as the 404 an unregistered route produced
// before the typed layer existed.
var ErrNotSupported = errors.New("transport: operation not supported by this endpoint")

// ErrUnreachable marks a send that provably never reached the peer (an
// unregistered Loopback name, a failed HTTP dial). The distinction
// matters to senders deciding whether a retry elsewhere is safe: an
// unreached request cannot have been ingested, while a timeout after
// the request went out is ambiguous. Detect it with Unreached, which
// also recognises HTTP dial failures.
var ErrUnreachable = errors.New("transport: peer unreachable")

// ErrBusy marks a send rejected at the peer's ingress door because its
// bounded delivery queue was full — backpressure, not failure. It is
// transient (retry with backoff, or fail over: the SDK and the outbox
// dispatcher both already classify it that way) and PROVABLY NOT
// INGESTED: the request was turned away before any handler saw it, so
// Unreached reports true and retrying elsewhere cannot double-count.
var ErrBusy = errors.New("transport: peer busy (ingress queue full)")
