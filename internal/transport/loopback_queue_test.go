package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// gateServer blocks HandleUpdate until released, so tests can hold a
// peer's workers busy and fill its ingress queue deterministically.
type gateServer struct {
	fakeServer
	mu      sync.Mutex
	entered chan struct{} // one token per handler entry
	release chan struct{}
	served  int
}

func newGateServer() *gateServer {
	return &gateServer{
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (g *gateServer) HandleUpdate(ctx context.Context, req UpdateRequest) (Receipt, error) {
	g.entered <- struct{}{}
	<-g.release
	g.mu.Lock()
	g.served++
	g.mu.Unlock()
	return Receipt{Shard: 0}, nil
}

func (g *gateServer) Served() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.served
}

// TestLoopbackQueueFullBusy: with the one worker held inside a handler
// and the depth-1 queue occupied, the next send is rejected at the door
// with ErrBusy — typed, transient, and provably not ingested.
func TestLoopbackQueueFullBusy(t *testing.T) {
	lb := NewLoopbackWith(LoopbackOptions{QueueDepth: 1, Workers: 1})
	g := newGateServer()
	lb.Register("loop://px", g)
	defer lb.Close()

	errc := make(chan error, 2)
	send := func() {
		_, err := lb.SendUpdate(context.Background(), "loop://px", UpdateRequest{Body: []byte("u")})
		errc <- err
	}
	go send()
	<-g.entered // the worker owns send #1
	go send()   // send #2 sits in the depth-1 queue
	waitQueued(t, lb, "loop://px", 1)

	_, err := lb.SendUpdate(context.Background(), "loop://px", UpdateRequest{Body: []byte("u3")})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("queue-full send returned %v, want ErrBusy", err)
	}
	if !Unreached(err) {
		t.Fatal("ErrBusy must report Unreached: the request was turned away before any handler saw it")
	}

	close(g.release)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("accepted send %d failed: %v", i, err)
		}
	}
	if g.Served() != 2 {
		t.Fatalf("handler served %d updates, want exactly the 2 accepted", g.Served())
	}
	st := lb.Stats()
	if len(st) != 1 || st[0].Busy != 1 || st[0].Handled != 2 {
		t.Fatalf("stats = %+v, want 1 busy rejection and 2 handled", st)
	}
}

func waitQueued(t *testing.T, lb *Loopback, ep string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, s := range lb.Stats() {
			if s.Endpoint == ep && s.Queued >= n {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("peer %s never queued %d requests", ep, n)
}

// TestLoopbackSlowPeerIsolation: a peer wedged inside its handler must
// not delay sends to a different peer — the whole point of per-peer
// queues over deliver-on-the-caller's-goroutine.
func TestLoopbackSlowPeerIsolation(t *testing.T) {
	lb := NewLoopbackWith(LoopbackOptions{QueueDepth: 4, Workers: 1})
	slow := newGateServer()
	fast := &fakeServer{receipt: Receipt{Shard: 1}}
	lb.Register("loop://slow", slow)
	lb.Register("loop://fast", fast)
	defer lb.Close()

	go lb.SendUpdate(context.Background(), "loop://slow", UpdateRequest{Body: []byte("u")})
	<-slow.entered

	done := make(chan error, 1)
	go func() {
		_, err := lb.SendUpdate(context.Background(), "loop://fast", UpdateRequest{Body: []byte("u")})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("send to the healthy peer failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send to the healthy peer stalled behind the wedged peer")
	}
	close(slow.release)
}

// TestLoopbackUnregisterFailsQueuedAsUnreached: killing a peer fails its
// QUEUED-but-unstarted requests as unreachable (safe to fail over — they
// provably were not ingested), while a request a worker already started
// runs to completion and its sender gets the real result.
func TestLoopbackUnregisterFailsQueuedAsUnreached(t *testing.T) {
	lb := NewLoopbackWith(LoopbackOptions{QueueDepth: 2, Workers: 1})
	g := newGateServer()
	lb.Register("loop://px", g)

	inflight := make(chan error, 1)
	go func() {
		_, err := lb.SendUpdate(context.Background(), "loop://px", UpdateRequest{Body: []byte("started")})
		inflight <- err
	}()
	<-g.entered // worker started request #1

	queued := make(chan error, 1)
	go func() {
		_, err := lb.SendUpdate(context.Background(), "loop://px", UpdateRequest{Body: []byte("queued")})
		queued <- err
	}()
	waitQueued(t, lb, "loop://px", 1)

	lb.Unregister("loop://px")

	if err := <-queued; !Unreached(err) {
		t.Fatalf("queued request got %v, want an Unreached error after the peer died", err)
	}
	close(g.release)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request must finish with the real result, got %v", err)
	}
	if g.Served() != 1 {
		t.Fatalf("handler served %d, want exactly the 1 started request", g.Served())
	}
}

// TestLoopbackCancelWhileQueued: a sender cancelling while its request
// is still queued gets its ctx error marked Unreached — in process, the
// transport KNOWS the handler never ran, so the cancellation is not
// ambiguous the way an HTTP timeout is.
func TestLoopbackCancelWhileQueued(t *testing.T) {
	lb := NewLoopbackWith(LoopbackOptions{QueueDepth: 2, Workers: 1})
	g := newGateServer()
	lb.Register("loop://px", g)
	defer lb.Close()

	inflight := make(chan error, 1)
	go func() {
		_, err := lb.SendUpdate(context.Background(), "loop://px", UpdateRequest{Body: []byte("started")})
		inflight <- err
	}()
	<-g.entered

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, err := lb.SendUpdate(ctx, "loop://px", UpdateRequest{Body: []byte("queued")})
		queued <- err
	}()
	waitQueued(t, lb, "loop://px", 1)
	cancel()

	err := <-queued
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued send got %v, want a context.Canceled error", err)
	}
	if !Unreached(err) {
		t.Fatal("a request cancelled while queued provably never ran; it must report Unreached")
	}
	close(g.release)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request failed: %v", err)
	}
	if got := g.Served(); got != 1 {
		t.Fatalf("handler served %d, want 1 — the cancelled request must never execute", got)
	}
}

// TestLoopbackRegisterReplacesPeer: re-registering a name is a restart —
// the old instance's workers stop, and new sends reach the new Server.
func TestLoopbackRegisterReplacesPeer(t *testing.T) {
	lb := NewLoopback()
	defer lb.Close()
	old := &fakeServer{receipt: Receipt{Shard: 1}}
	lb.Register("loop://px", old)
	if rec, err := lb.SendUpdate(context.Background(), "loop://px", UpdateRequest{Body: []byte("u")}); err != nil || rec.Shard != 1 {
		t.Fatalf("send to first instance: rec=%+v err=%v", rec, err)
	}
	fresh := &fakeServer{receipt: Receipt{Shard: 2}}
	lb.Register("loop://px", fresh)
	if rec, err := lb.SendUpdate(context.Background(), "loop://px", UpdateRequest{Body: []byte("u")}); err != nil || rec.Shard != 2 {
		t.Fatalf("send after restart: rec=%+v err=%v, want shard 2 from the new instance", rec, err)
	}
}

// TestLoopbackHandlerErrorsPassThrough: handler results (including
// typed StatusError rejections) cross the queue unchanged, so the
// bounded queue is invisible to the protocol semantics.
func TestLoopbackHandlerErrorsPassThrough(t *testing.T) {
	lb := NewLoopback()
	defer lb.Close()
	f := &fakeServer{receipt: Receipt{Shard: -1}, err: Errorf(409, "round conflict")}
	lb.Register("loop://px", f)
	_, err := lb.SendBatch(context.Background(), "loop://px", BatchRequest{Body: []byte("b"), ID: "id-1"})
	se := AsStatus(err)
	if se == nil || se.Code != 409 {
		t.Fatalf("handler's typed rejection arrived as %v, want StatusError 409", err)
	}
	if Unreached(err) {
		t.Fatal("a handler rejection reached the peer; it must NOT report Unreached")
	}
}
