package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"

	"mixnn/internal/wire"
)

// fakeServer records the typed requests it receives and answers with
// scripted results, so the HTTP client ↔ HTTP adapter pair can be
// checked for lossless round-tripping.
type fakeServer struct {
	lastUpdate *UpdateRequest
	lastHop    *HopRequest
	lastBatch  *BatchRequest
	lastNonce  []byte
	lastTopo   *TopologyRequest

	receipt Receipt
	err     error
}

func (f *fakeServer) HandleUpdate(ctx context.Context, req UpdateRequest) (Receipt, error) {
	f.lastUpdate = &req
	return f.receipt, f.err
}
func (f *fakeServer) HandleHop(ctx context.Context, req HopRequest) (Receipt, error) {
	f.lastHop = &req
	return f.receipt, f.err
}
func (f *fakeServer) HandleBatch(ctx context.Context, req BatchRequest) (Receipt, error) {
	f.lastBatch = &req
	return f.receipt, f.err
}
func (f *fakeServer) HandleAttest(ctx context.Context, nonce []byte) (wire.AttestationResponse, error) {
	f.lastNonce = nonce
	return wire.AttestationResponse{MeasurementHex: "aa", NonceHex: "bb"}, f.err
}
func (f *fakeServer) HandleModel(ctx context.Context) (ModelResponse, error) {
	return ModelResponse{Round: 7, Body: []byte("model-bytes")}, f.err
}
func (f *fakeServer) HandleTopology(ctx context.Context, req TopologyRequest) (wire.TopologyStatus, error) {
	f.lastTopo = &req
	return wire.TopologyStatus{Version: 3, Mode: "sticky", RoundSize: 8}, f.err
}
func (f *fakeServer) HandleStatus(ctx context.Context) (StatusResponse, error) {
	return StatusResponse{Proxy: &wire.ShardedProxyStatus{RoundSize: 8, Shards: []wire.ShardStatus{{}}}}, f.err
}
func (f *fakeServer) HandleDiscover(ctx context.Context) (wire.DiscoverResponse, error) {
	return wire.DiscoverResponse{Endpoint: "fake", Peers: []string{"peer-a", "peer-b"}, Health: 0.75}, f.err
}

func pair(t *testing.T) (*fakeServer, *HTTP, string) {
	t.Helper()
	f := &fakeServer{receipt: Receipt{Shard: -1}}
	srv := httptest.NewServer(NewHandler(f))
	t.Cleanup(srv.Close)
	return f, NewHTTP(srv.Client()), srv.URL
}

func TestHTTPRoundTripUpdate(t *testing.T) {
	f, tr, url := pair(t)
	f.receipt = Receipt{Shard: 2}
	rcpt, err := tr.SendUpdate(context.Background(), url, UpdateRequest{Body: []byte("ct"), ClientID: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Shard != 2 {
		t.Fatalf("receipt shard = %d, want 2", rcpt.Shard)
	}
	if f.lastUpdate == nil || string(f.lastUpdate.Body) != "ct" || f.lastUpdate.ClientID != "alice" {
		t.Fatalf("server saw %+v", f.lastUpdate)
	}
}

func TestHTTPRoundTripHop(t *testing.T) {
	f, tr, url := pair(t)
	if _, err := tr.Hop(context.Background(), url, HopRequest{Body: []byte("h"), Hop: 3, Secret: "s3cr3t"}); err != nil {
		t.Fatal(err)
	}
	if f.lastHop == nil || f.lastHop.Hop != 3 || f.lastHop.Secret != "s3cr3t" || string(f.lastHop.Body) != "h" {
		t.Fatalf("server saw %+v", f.lastHop)
	}
}

func TestHTTPRoundTripBatch(t *testing.T) {
	f, tr, url := pair(t)
	req := BatchRequest{Body: []byte("env"), Hop: 2, Secret: "x", ID: "id-1", Sender: "box-a", Seq: 41, HasSeq: true}
	if _, err := tr.SendBatch(context.Background(), url, req); err != nil {
		t.Fatal(err)
	}
	got := f.lastBatch
	if got == nil || got.Hop != 2 || got.Secret != "x" || got.ID != "id-1" ||
		got.Sender != "box-a" || got.Seq != 41 || !got.HasSeq || string(got.Body) != "env" {
		t.Fatalf("server saw %+v", got)
	}
	// The plaintext server leg carries no hop depth or secret on the
	// wire (bit-compatibility with the pre-transport sender).
	f.lastBatch = nil
	if _, err := tr.SendBatch(context.Background(), url, BatchRequest{Body: []byte("env"), Hop: 0, Secret: "ignored"}); err != nil {
		t.Fatal(err)
	}
	if f.lastBatch.Hop != 0 || f.lastBatch.Secret != "" {
		t.Fatalf("server-leg batch leaked hop metadata: %+v", f.lastBatch)
	}
}

func TestHTTPRoundTripDuplicateBatch(t *testing.T) {
	f, tr, url := pair(t)
	f.receipt = Receipt{Shard: -1, Duplicate: true}
	rcpt, err := tr.SendBatch(context.Background(), url, BatchRequest{Body: []byte("b"), ID: "dup"})
	if err != nil {
		t.Fatal(err)
	}
	if !rcpt.Duplicate {
		t.Fatal("duplicate acknowledgement (200) not surfaced in the receipt")
	}
}

func TestHTTPStatusErrorMapping(t *testing.T) {
	f, tr, url := pair(t)
	f.err = &StatusError{Code: http.StatusConflict, Stale: true, Msg: "stale batch redelivery"}
	_, err := tr.SendBatch(context.Background(), url, BatchRequest{Body: []byte("b"), ID: "x"})
	se := AsStatus(err)
	if se == nil || se.Code != http.StatusConflict || !se.Stale {
		t.Fatalf("typed rejection lost in transit: %v", err)
	}
	f.err = ErrNotSupported
	if _, err := tr.Model(context.Background(), url); AsStatus(err) == nil || AsStatus(err).Code != http.StatusNotFound {
		t.Fatalf("ErrNotSupported must arrive as a 404 StatusError, got %v", err)
	}
}

func TestHTTPAttestAndModelAndTopology(t *testing.T) {
	f, tr, url := pair(t)
	ar, err := tr.Attest(context.Background(), url, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.lastNonce, []byte{1, 2, 3}) || ar.MeasurementHex != "aa" {
		t.Fatalf("attest round trip: nonce %x, resp %+v", f.lastNonce, ar)
	}
	m, err := tr.Model(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if m.Round != 7 || string(m.Body) != "model-bytes" {
		t.Fatalf("model round trip: %+v", m)
	}
	// GET (nil directive) and POST (non-nil) both land, secret intact.
	if _, err := tr.Topology(context.Background(), url, TopologyRequest{Secret: "adm"}); err != nil {
		t.Fatal(err)
	}
	if f.lastTopo.Directive != nil || f.lastTopo.Secret != "adm" {
		t.Fatalf("topology GET saw %+v", f.lastTopo)
	}
	d := &wire.TopologyDirective{Mode: "hash-quota", RoundSize: 12, SyncPeers: true}
	if _, err := tr.Topology(context.Background(), url, TopologyRequest{Directive: d, Secret: "adm"}); err != nil {
		t.Fatal(err)
	}
	got := f.lastTopo
	if got.Directive == nil || got.Directive.Mode != "hash-quota" || got.Directive.RoundSize != 12 || !got.Directive.SyncPeers {
		t.Fatalf("topology POST saw %+v", got.Directive)
	}
	st, err := tr.Status(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if st.Proxy == nil || st.Proxy.RoundSize != 8 {
		t.Fatalf("status sniffing failed: %+v", st)
	}
}

// TestHandlerRequiresBearerScheme: a scheme-less Authorization header
// must NOT surface its raw value as the secret — the pre-transport
// handlers compared the whole header against "Bearer "+secret, so a
// bare secret never authorized anything.
func TestHandlerRequiresBearerScheme(t *testing.T) {
	f, _, url := pair(t)
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/hop", bytes.NewReader([]byte("x")))
	req.Header.Set("Authorization", "s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if f.lastHop.Secret != "" {
		t.Fatalf("scheme-less Authorization surfaced as secret %q", f.lastHop.Secret)
	}
	req, _ = http.NewRequest(http.MethodPost, url+"/v1/hop", bytes.NewReader([]byte("x")))
	req.Header.Set("Authorization", "Bearer s3cret")
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if f.lastHop.Secret != "s3cret" {
		t.Fatalf("bearer token lost: %q", f.lastHop.Secret)
	}
}

func TestHandlerRejectsForgedHopOnUpdate(t *testing.T) {
	_, _, url := pair(t)
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/update", bytes.NewReader([]byte("x")))
	req.Header.Set(wire.HeaderHop, "3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forged hop on the participant endpoint returned %s, want 400", resp.Status)
	}
}

func TestHandlerProtoNegotiation(t *testing.T) {
	f, _, url := pair(t)
	// A request claiming a FUTURE protocol version is refused with the
	// permanent 426 class; current and absent versions pass.
	for _, tc := range []struct {
		proto string
		want  int
	}{
		{"", http.StatusAccepted},
		{strconv.Itoa(wire.ProtoV1), http.StatusAccepted},
		{strconv.Itoa(wire.ProtoV1 + 1), http.StatusUpgradeRequired},
		{"junk", http.StatusBadRequest},
	} {
		req, _ := http.NewRequest(http.MethodPost, url+"/v1/update", bytes.NewReader([]byte("x")))
		if tc.proto != "" {
			req.Header.Set(wire.HeaderProto, tc.proto)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("proto %q returned %s, want %d", tc.proto, resp.Status, tc.want)
		}
		if got := resp.Header.Get(wire.HeaderProto); got != strconv.Itoa(wire.ProtoV1) {
			t.Fatalf("response proto header = %q", got)
		}
	}
	_ = f
}

type fakeTimeout struct{}

func (fakeTimeout) Error() string { return "i/o timeout" }
func (fakeTimeout) Timeout() bool { return true }

// TestUnreached pins the provably-not-delivered classification the
// SDK's failover safety rests on.
func TestUnreached(t *testing.T) {
	if !Unreached(fmt.Errorf("wrap: %w", ErrUnreachable)) {
		t.Fatal("wrapped ErrUnreachable must be unreached")
	}
	// A dial failure never sent request bytes — including a dial
	// TIMEOUT (blackholed host).
	dial := &url.Error{Op: "Post", URL: "http://x", Err: &net.OpError{Op: "dial", Err: fakeTimeout{}}}
	if !Unreached(dial) {
		t.Fatal("dial timeout must be unreached (no bytes sent)")
	}
	refused := &url.Error{Op: "Post", URL: "http://x", Err: &net.OpError{Op: "dial", Err: errors.New("connection refused")}}
	if !Unreached(refused) {
		t.Fatal("connection refused must be unreached")
	}
	// A timeout AFTER the connection was up is ambiguous.
	respWait := &url.Error{Op: "Post", URL: "http://x", Err: fakeTimeout{}}
	if Unreached(respWait) {
		t.Fatal("post-dial timeout must be ambiguous")
	}
	read := &url.Error{Op: "Post", URL: "http://x", Err: &net.OpError{Op: "read", Err: errors.New("connection reset")}}
	if Unreached(read) {
		t.Fatal("mid-exchange reset must be ambiguous")
	}
	if Unreached(errors.New("anything else")) {
		t.Fatal("unknown errors must be ambiguous")
	}
}

func TestLoopbackRegistry(t *testing.T) {
	lb := NewLoopback()
	f := &fakeServer{receipt: Receipt{Shard: 1}}
	lb.Register("loop://px", f)
	rcpt, err := lb.SendUpdate(context.Background(), "loop://px", UpdateRequest{Body: []byte("u")})
	if err != nil || rcpt.Shard != 1 {
		t.Fatalf("loopback send: %v %+v", err, rcpt)
	}
	if _, err := lb.SendUpdate(context.Background(), "loop://nowhere", UpdateRequest{}); err == nil {
		t.Fatal("unregistered peer must be unreachable")
	} else if AsStatus(err) != nil {
		t.Fatal("unreachable must be a transport error (transient), not a typed rejection")
	}
	lb.Unregister("loop://px")
	if _, err := lb.SendUpdate(context.Background(), "loop://px", UpdateRequest{}); err == nil {
		t.Fatal("unregistered peer must be unreachable after Unregister")
	}
	// Typed errors cross the loopback verbatim — no lossy re-encode.
	f2 := &fakeServer{err: &StatusError{Code: 508, Msg: "depth"}}
	lb.Register("loop://px2", f2)
	_, err = lb.Hop(context.Background(), "loop://px2", HopRequest{Hop: 9})
	if se := AsStatus(err); se == nil || se.Code != 508 {
		t.Fatalf("loopback error fidelity: %v", err)
	}
}
