package transport

import (
	"context"
	"fmt"
	"sync"

	"mixnn/internal/wire"
)

// Loopback is the in-process Transport: endpoints are names in a
// registry, and every operation is a direct method call on the
// registered Server — no HTTP framing, no header encoding, no socket
// copy. Request bodies are handed to the receiver without copying, so
// callers must not mutate a Body after sending it (every production
// sender builds a fresh buffer per send; retries resend the same,
// unmutated bytes).
//
// A whole multi-tier deployment — participants, a sharded front proxy,
// relay shard proxies, cascade hops and the aggregation server — runs
// in one process over a single Loopback, which is what makes the full
// pipeline benchmarkable at hardware speed instead of loopback-HTTP
// speed, and lets the typed-protocol test batteries drive every leg
// without a port.
type Loopback struct {
	mu    sync.RWMutex
	peers map[string]Server
}

// NewLoopback builds an empty registry.
func NewLoopback() *Loopback {
	return &Loopback{peers: make(map[string]Server)}
}

// Register binds a name to a Server; sends addressed to ep reach it. A
// later Register for the same name replaces the peer (a "restart").
func (l *Loopback) Register(ep string, s Server) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.peers[ep] = s
}

// Unregister removes a peer; subsequent sends to ep fail as
// unreachable (a transient error, like a downed HTTP listener).
func (l *Loopback) Unregister(ep string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.peers, ep)
}

func (l *Loopback) peer(ep string) (Server, error) {
	l.mu.RLock()
	s, ok := l.peers[ep]
	l.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: loopback peer %q: %w", ep, ErrUnreachable)
	}
	return s, nil
}

// SendUpdate implements Transport.
func (l *Loopback) SendUpdate(ctx context.Context, ep string, req UpdateRequest) (Receipt, error) {
	s, err := l.peer(ep)
	if err != nil {
		return Receipt{Shard: -1}, err
	}
	return s.HandleUpdate(ctx, req)
}

// Hop implements Transport.
func (l *Loopback) Hop(ctx context.Context, ep string, req HopRequest) (Receipt, error) {
	s, err := l.peer(ep)
	if err != nil {
		return Receipt{Shard: -1}, err
	}
	return s.HandleHop(ctx, req)
}

// SendBatch implements Transport.
func (l *Loopback) SendBatch(ctx context.Context, ep string, req BatchRequest) (Receipt, error) {
	s, err := l.peer(ep)
	if err != nil {
		return Receipt{Shard: -1}, err
	}
	return s.HandleBatch(ctx, req)
}

// Attest implements Transport.
func (l *Loopback) Attest(ctx context.Context, ep string, nonce []byte) (wire.AttestationResponse, error) {
	s, err := l.peer(ep)
	if err != nil {
		return wire.AttestationResponse{}, err
	}
	return s.HandleAttest(ctx, nonce)
}

// Model implements Transport.
func (l *Loopback) Model(ctx context.Context, ep string) (ModelResponse, error) {
	s, err := l.peer(ep)
	if err != nil {
		return ModelResponse{}, err
	}
	return s.HandleModel(ctx)
}

// Topology implements Transport.
func (l *Loopback) Topology(ctx context.Context, ep string, req TopologyRequest) (wire.TopologyStatus, error) {
	s, err := l.peer(ep)
	if err != nil {
		return wire.TopologyStatus{}, err
	}
	return s.HandleTopology(ctx, req)
}

// Status implements Transport.
func (l *Loopback) Status(ctx context.Context, ep string) (StatusResponse, error) {
	s, err := l.peer(ep)
	if err != nil {
		return StatusResponse{}, err
	}
	return s.HandleStatus(ctx)
}
