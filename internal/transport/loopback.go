package transport

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mixnn/internal/wire"
)

// Loopback is the in-process Transport: endpoints are names in a
// registry, and every operation reaches the registered Server without
// HTTP framing, header encoding or a socket copy. Request bodies are
// handed to the receiver without copying, so callers must not mutate a
// Body after sending it (every production sender builds a fresh buffer
// per send; retries resend the same, unmutated bytes).
//
// A whole multi-tier deployment — participants, a sharded front proxy,
// relay shard proxies, cascade hops and the aggregation server — runs
// in one process over a single Loopback, which is what makes the full
// pipeline benchmarkable at hardware speed instead of loopback-HTTP
// speed, and lets the typed-protocol test batteries drive every leg
// without a port.
//
// Data-plane operations (SendUpdate, Hop, SendBatch) go through a
// BOUNDED PER-PEER INGRESS QUEUE drained by a per-peer worker pool,
// mirroring a real listener's accept queue: a slow receiver makes its
// own queue fill instead of borrowing the caller's goroutine for the
// whole handler, so one stalled peer cannot backpressure every sender
// in the process. A send that finds the queue full fails fast with
// ErrBusy — a transient, provably-not-ingested rejection (Unreached
// reports true) that the SDK fails over on and the outbox dispatcher
// retries with backoff. Control-plane operations (Attest, Model,
// Topology, Status) stay direct calls: polling a tier's status or
// attesting an enclave must not queue behind ten thousand updates.
type Loopback struct {
	opts LoopbackOptions

	mu    sync.RWMutex
	peers map[string]*loopbackPeer
}

// LoopbackOptions sizes the per-peer ingress machinery. Zero values
// take the defaults.
type LoopbackOptions struct {
	// QueueDepth bounds each peer's data-plane ingress queue (default
	// DefaultLoopbackQueueDepth). A send that finds the queue full
	// fails with ErrBusy instead of blocking.
	QueueDepth int
	// Workers is each peer's handler pool size (default GOMAXPROCS,
	// floor 4): how many data-plane requests one peer processes
	// concurrently.
	Workers int
}

// DefaultLoopbackQueueDepth is the per-peer ingress queue bound when
// LoopbackOptions does not override it — deep enough that the test
// batteries' modest concurrency never trips it, bounded so a load
// harness can observe real backpressure by tightening it.
const DefaultLoopbackQueueDepth = 1024

// loopbackPeer is one registered endpoint: its Server plus the bounded
// ingress queue and the worker pool draining it. quit is closed when
// the peer is unregistered, replaced, or the Loopback closes; workers
// exit and queued-but-unclaimed senders fail over as unreachable.
type loopbackPeer struct {
	srv  Server
	jobs chan *loopbackJob
	quit chan struct{}

	handled atomic.Uint64 // data-plane requests executed
	busy    atomic.Uint64 // sends rejected queue-full
	peak    atomic.Int64  // ingress queue high watermark
}

// loopbackJob is one queued data-plane request. Exactly one party —
// the draining worker, a cancelling sender, or an unregistering peer's
// waiter — claims it: the worker runs claimed jobs and discards jobs a
// canceller claimed first, so a request either executes exactly once
// or provably never executes.
type loopbackJob struct {
	ctx     context.Context
	run     func(ctx context.Context, s Server)
	claimed atomic.Bool
	done    chan struct{}
}

// NewLoopback builds an empty registry with default queue sizing.
func NewLoopback() *Loopback {
	return NewLoopbackWith(LoopbackOptions{})
}

// NewLoopbackWith builds an empty registry with explicit queue sizing.
func NewLoopbackWith(opts LoopbackOptions) *Loopback {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultLoopbackQueueDepth
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
		if opts.Workers < 4 {
			opts.Workers = 4
		}
	}
	return &Loopback{opts: opts, peers: make(map[string]*loopbackPeer)}
}

// Register binds a name to a Server; sends addressed to ep reach it. A
// later Register for the same name replaces the peer (a "restart"):
// the old instance's workers stop and its queued-but-unstarted
// requests fail over as unreachable, exactly like requests caught in a
// real listener's accept queue when the process dies.
func (l *Loopback) Register(ep string, s Server) {
	p := &loopbackPeer{
		srv:  s,
		jobs: make(chan *loopbackJob, l.opts.QueueDepth),
		quit: make(chan struct{}),
	}
	l.mu.Lock()
	old := l.peers[ep]
	l.peers[ep] = p
	l.mu.Unlock()
	if old != nil {
		close(old.quit)
	}
	for i := 0; i < l.opts.Workers; i++ {
		go p.drain()
	}
}

// Unregister removes a peer; subsequent sends to ep fail as
// unreachable (a transient error, like a downed HTTP listener), its
// workers stop, and senders whose requests were queued but not yet
// started fail over as unreachable too — they provably were not
// ingested. A request a worker already started runs to completion and
// its sender gets the real result, like an in-flight request on a
// connection that outlives the listener.
func (l *Loopback) Unregister(ep string) {
	l.mu.Lock()
	p := l.peers[ep]
	delete(l.peers, ep)
	l.mu.Unlock()
	if p != nil {
		close(p.quit)
	}
}

// Close unregisters every peer, stopping all worker pools. Senders
// with queued requests fail over as unreachable.
func (l *Loopback) Close() {
	l.mu.Lock()
	peers := l.peers
	l.peers = make(map[string]*loopbackPeer)
	l.mu.Unlock()
	for _, p := range peers {
		close(p.quit)
	}
}

// LoopbackPeerStats is one peer's ingress-queue counters, for load
// harnesses watching backpressure.
type LoopbackPeerStats struct {
	Endpoint string
	Queued   int    // data-plane requests waiting now
	Peak     int    // ingress queue high watermark since Register
	Handled  uint64 // data-plane requests executed
	Busy     uint64 // sends rejected queue-full (ErrBusy)
}

// Stats snapshots every registered peer's ingress-queue counters,
// sorted by endpoint.
func (l *Loopback) Stats() []LoopbackPeerStats {
	l.mu.RLock()
	out := make([]LoopbackPeerStats, 0, len(l.peers))
	for ep, p := range l.peers {
		out = append(out, LoopbackPeerStats{
			Endpoint: ep,
			Queued:   len(p.jobs),
			Peak:     int(p.peak.Load()),
			Handled:  p.handled.Load(),
			Busy:     p.busy.Load(),
		})
	}
	l.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// drain is one worker of a peer's pool: it claims queued jobs and runs
// them until the peer goes away. Jobs a canceller claimed first are
// discarded (their sender already returned "not ingested").
func (p *loopbackPeer) drain() {
	for {
		// Check quit first so a retired peer's workers exit even while
		// jobs remain queued (their senders fail over via quit).
		select {
		case <-p.quit:
			return
		default:
		}
		select {
		case <-p.quit:
			return
		case job := <-p.jobs:
			if job.claimed.CompareAndSwap(false, true) {
				job.run(job.ctx, p.srv)
				p.handled.Add(1)
			}
			close(job.done)
		}
	}
}

// submit queues one data-plane request for ep and waits for its
// outcome. The error taxonomy is exact because the queue is in
// process: an unknown or retired peer, and a queued request nobody
// started, are UNREACHED (safe to fail over / retry elsewhere); a full
// queue is ErrBusy (also unreached — rejected at the door); and once a
// worker claims the request, submit waits for the handler's real
// result, however the caller's ctx fares (the handler sees ctx and
// honours it, like an in-flight HTTP request).
func (l *Loopback) submit(ctx context.Context, ep string, run func(ctx context.Context, s Server)) error {
	l.mu.RLock()
	p, ok := l.peers[ep]
	l.mu.RUnlock()
	if !ok {
		return fmt.Errorf("transport: loopback peer %q: %w", ep, ErrUnreachable)
	}
	job := &loopbackJob{ctx: ctx, run: run, done: make(chan struct{})}
	select {
	case p.jobs <- job:
	default:
		p.busy.Add(1)
		return fmt.Errorf("transport: loopback peer %q: %w", ep, ErrBusy)
	}
	if d := int64(len(p.jobs)); d > p.peak.Load() {
		// Benign race on the watermark: Stats tolerance, not accounting.
		p.peak.Store(d)
	}
	select {
	case <-job.done:
		return nil
	case <-ctx.Done():
		if job.claimed.CompareAndSwap(false, true) {
			// Claimed before any worker: the request never started, so
			// this cancellation is provably-not-ingested, not ambiguous.
			return fmt.Errorf("transport: loopback peer %q: request cancelled while queued: %w (%w)", ep, ctx.Err(), ErrUnreachable)
		}
		<-job.done
		return nil
	case <-p.quit:
		if job.claimed.CompareAndSwap(false, true) {
			return fmt.Errorf("transport: loopback peer %q went away with the request still queued: %w", ep, ErrUnreachable)
		}
		<-job.done
		return nil
	}
}

// SendUpdate implements Transport.
func (l *Loopback) SendUpdate(ctx context.Context, ep string, req UpdateRequest) (Receipt, error) {
	rec, herr := Receipt{Shard: -1}, error(nil)
	if err := l.submit(ctx, ep, func(ctx context.Context, s Server) {
		rec, herr = s.HandleUpdate(ctx, req)
	}); err != nil {
		return Receipt{Shard: -1}, err
	}
	return rec, herr
}

// Hop implements Transport.
func (l *Loopback) Hop(ctx context.Context, ep string, req HopRequest) (Receipt, error) {
	rec, herr := Receipt{Shard: -1}, error(nil)
	if err := l.submit(ctx, ep, func(ctx context.Context, s Server) {
		rec, herr = s.HandleHop(ctx, req)
	}); err != nil {
		return Receipt{Shard: -1}, err
	}
	return rec, herr
}

// SendBatch implements Transport.
func (l *Loopback) SendBatch(ctx context.Context, ep string, req BatchRequest) (Receipt, error) {
	rec, herr := Receipt{Shard: -1}, error(nil)
	if err := l.submit(ctx, ep, func(ctx context.Context, s Server) {
		rec, herr = s.HandleBatch(ctx, req)
	}); err != nil {
		return Receipt{Shard: -1}, err
	}
	return rec, herr
}

func (l *Loopback) peer(ep string) (Server, error) {
	l.mu.RLock()
	p, ok := l.peers[ep]
	l.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: loopback peer %q: %w", ep, ErrUnreachable)
	}
	return p.srv, nil
}

// Attest implements Transport.
func (l *Loopback) Attest(ctx context.Context, ep string, nonce []byte) (wire.AttestationResponse, error) {
	s, err := l.peer(ep)
	if err != nil {
		return wire.AttestationResponse{}, err
	}
	return s.HandleAttest(ctx, nonce)
}

// Model implements Transport.
func (l *Loopback) Model(ctx context.Context, ep string) (ModelResponse, error) {
	s, err := l.peer(ep)
	if err != nil {
		return ModelResponse{}, err
	}
	return s.HandleModel(ctx)
}

// Topology implements Transport.
func (l *Loopback) Topology(ctx context.Context, ep string, req TopologyRequest) (wire.TopologyStatus, error) {
	s, err := l.peer(ep)
	if err != nil {
		return wire.TopologyStatus{}, err
	}
	return s.HandleTopology(ctx, req)
}

// Status implements Transport.
func (l *Loopback) Status(ctx context.Context, ep string) (StatusResponse, error) {
	s, err := l.peer(ep)
	if err != nil {
		return StatusResponse{}, err
	}
	return s.HandleStatus(ctx)
}

// Discover implements Transport. Like the other control-plane verbs it
// is a direct call: a health probe must not queue behind data-plane
// ingress — that would make every overloaded peer look unreachable
// exactly when the SDK needs its health score.
func (l *Loopback) Discover(ctx context.Context, ep string) (wire.DiscoverResponse, error) {
	s, err := l.peer(ep)
	if err != nil {
		return wire.DiscoverResponse{}, err
	}
	return s.HandleDiscover(ctx)
}

// QueueDepth reports one peer's current data-plane ingress queue length
// (-1 for an unknown peer): the live signal a server's admission gate
// reads without snapshotting every peer via Stats.
func (l *Loopback) QueueDepth(ep string) int {
	l.mu.RLock()
	p, ok := l.peers[ep]
	l.mu.RUnlock()
	if !ok {
		return -1
	}
	return len(p.jobs)
}
