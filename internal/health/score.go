package health

// Reference scales that normalize each pressure signal into "units of
// obviously overloaded". They are deliberately coarse: the score ranks
// peers against each other, it is not an SLO.
const (
	scaleQueueDepth    = 1024 // DefaultLoopbackQueueDepth; a full ingress queue is ~1.0
	scaleLaneBacklog   = 32   // a delivery lane 32 deep is stalled, not busy
	scaleDecryptMicros = 5000 // session decrypt ~100us; 5ms means RSA is back on the hot path
)

// Score maps a Signals snapshot to a health score in (0, 1]: 1 is idle
// and it decreases monotonically in every pressure signal. The range is
// split into disjoint bands — non-shedding peers land in (0.1, 1],
// shedding peers in (0, 0.1] — so a shedding peer ranks below any
// non-shedding one no matter how their raw signals compare.
// Participant SDKs sort their failover list by this value.
func Score(sig Signals, shedding bool) float64 {
	load := float64(sig.QueueDepth)/scaleQueueDepth +
		float64(sig.LaneBacklog)/scaleLaneBacklog +
		sig.DecryptMicros/scaleDecryptMicros
	if load < 0 {
		load = 0
	}
	if shedding {
		return 0.1 / (1 + load)
	}
	return 0.1 + 0.9/(1+load)
}
