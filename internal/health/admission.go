package health

import (
	"sync"
	"time"
)

// Signals is a snapshot of the live tier pressure an admission gate and
// the health score read: the ingress queue depth (bounded Loopback
// queue or HTTP accept backlog), the deepest outbox delivery lane, and
// the mean enclave decrypt latency in microseconds (the session-crypto
// path's early-warning signal — RSA falling back onto the per-update
// path shows up here long before queues fill).
type Signals struct {
	QueueDepth    int
	LaneBacklog   int
	DecryptMicros float64
}

// AdmissionConfig tunes the gate. The zero value admits everything:
// RatePerSec 0 disables rate limiting, and each shed threshold at 0
// disables that signal — so existing deployments are unchanged until
// an operator opts in.
type AdmissionConfig struct {
	// RatePerSec is the sustained per-sender update rate; Burst is the
	// bucket capacity (defaults to max(1, RatePerSec) when unset).
	RatePerSec float64
	Burst      float64

	// Shed thresholds: ingress is refused (for everyone, regardless of
	// per-sender budget) while any enabled signal exceeds its threshold.
	ShedQueueDepth    int
	ShedLaneBacklog   int
	ShedDecryptMicros float64

	// MaxSenders bounds the per-sender bucket map; at the bound the
	// stalest bucket is evicted. Defaults to DefaultMaxSenders.
	MaxSenders int

	// now overrides the clock in tests.
	now func() time.Time
}

// DefaultMaxSenders bounds the admission controller's per-sender state.
const DefaultMaxSenders = 1 << 16

// Admission is the ingress gate: a per-sender token bucket plus a
// load-shedding check over the latest Signals snapshot. Safe for
// concurrent use.
type Admission struct {
	cfg AdmissionConfig

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewAdmission builds a gate from cfg. A nil-equivalent (zero) config
// yields a gate that admits everything at zero cost per call.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.RatePerSec > 0 && cfg.Burst <= 0 {
		cfg.Burst = cfg.RatePerSec
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.MaxSenders <= 0 {
		cfg.MaxSenders = DefaultMaxSenders
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Admission{cfg: cfg, buckets: make(map[string]*bucket)}
}

// Enabled reports whether any admission mechanism is configured; a
// fully-disabled gate lets callers skip signal snapshotting entirely.
func (a *Admission) Enabled() bool {
	return a != nil && (a.cfg.RatePerSec > 0 || a.shedEnabled())
}

func (a *Admission) shedEnabled() bool {
	return a.cfg.ShedQueueDepth > 0 || a.cfg.ShedLaneBacklog > 0 || a.cfg.ShedDecryptMicros > 0
}

// Shedding reports whether the gate is refusing all ingress under sig.
func (a *Admission) Shedding(sig Signals) bool {
	if a == nil {
		return false
	}
	if a.cfg.ShedQueueDepth > 0 && sig.QueueDepth >= a.cfg.ShedQueueDepth {
		return true
	}
	if a.cfg.ShedLaneBacklog > 0 && sig.LaneBacklog >= a.cfg.ShedLaneBacklog {
		return true
	}
	if a.cfg.ShedDecryptMicros > 0 && sig.DecryptMicros >= a.cfg.ShedDecryptMicros {
		return true
	}
	return false
}

// Allow decides one ingress attempt by sender under the signal
// snapshot. On refusal it returns shed=true when the whole tier is
// load-shedding (vs. this sender being over its own budget) and a
// retryAfter hint: how long until the sender's bucket refills one
// token, or a fixed shed-side hint. Callers surface the hint as a
// Retry-After so well-behaved SDKs back off instead of hammering.
func (a *Admission) Allow(sender string, sig Signals) (ok bool, shed bool, retryAfter time.Duration) {
	if a == nil {
		return true, false, 0
	}
	if a.Shedding(sig) {
		// Shedding is about aggregate pressure, not this sender; the
		// hint is a coarse "come back soon" — queue drain time is not
		// predictable from here.
		return false, true, shedRetryHint
	}
	if a.cfg.RatePerSec <= 0 {
		return true, false, 0
	}

	now := a.cfg.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b, okB := a.buckets[sender]
	if !okB {
		if len(a.buckets) >= a.cfg.MaxSenders {
			a.evictStalest()
		}
		b = &bucket{tokens: a.cfg.Burst, last: now}
		a.buckets[sender] = b
	} else {
		dt := now.Sub(b.last).Seconds()
		if dt > 0 {
			b.tokens += dt * a.cfg.RatePerSec
			if b.tokens > a.cfg.Burst {
				b.tokens = a.cfg.Burst
			}
			b.last = now
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, false, 0
	}
	need := (1 - b.tokens) / a.cfg.RatePerSec
	return false, false, time.Duration(need * float64(time.Second))
}

// shedRetryHint is the Retry-After offered while load-shedding.
const shedRetryHint = 1 * time.Second

// evictStalest drops the bucket touched longest ago. Called with a.mu
// held. Evicting a sender resets it to a full burst on return — an
// acceptable leniency; the bound exists to cap memory, not to make the
// limiter adversarially exact.
func (a *Admission) evictStalest() {
	var (
		stalest string
		oldest  time.Time
		first   = true
	)
	for s, b := range a.buckets {
		if first || b.last.Before(oldest) {
			stalest, oldest, first = s, b.last, false
		}
	}
	if !first {
		delete(a.buckets, stalest)
	}
}

// Senders reports how many per-sender buckets are live (observability).
func (a *Admission) Senders() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.buckets)
}
