package health

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryExpositionRoundtrip(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("mixnn_ingress_updates_total", "Updates accepted at ingress.")
	c.Add(3)
	c.Inc()
	g := r.NewGauge("mixnn_outbox_lane_depth", "Entries queued per delivery lane.",
		Label{"dest", "loop://agg"})
	g.Set(7)
	r.NewGauge("mixnn_outbox_lane_depth", "Entries queued per delivery lane.",
		Label{"dest", `we"ird\lane`}).Set(1)
	h := r.NewHistogram("mixnn_decrypt_us", "Per-update enclave decrypt latency.",
		[]float64{100, 1000, 10000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(50000)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE mixnn_ingress_updates_total counter",
		"mixnn_ingress_updates_total 4",
		`mixnn_outbox_lane_depth{dest="loop://agg"} 7`,
		`mixnn_outbox_lane_depth{dest="we\"ird\\lane"} 1`,
		`mixnn_decrypt_us_bucket{le="100"} 1`,
		`mixnn_decrypt_us_bucket{le="1000"} 2`,
		`mixnn_decrypt_us_bucket{le="+Inf"} 3`,
		"mixnn_decrypt_us_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	fams, err := ValidateExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ValidateExposition on own output: %v", err)
	}
	found := map[string]bool{}
	for _, f := range fams {
		found[f] = true
	}
	for _, want := range []string{"mixnn_ingress_updates_total", "mixnn_outbox_lane_depth", "mixnn_decrypt_us"} {
		if !found[want] {
			t.Errorf("ValidateExposition missed family %q (got %v)", want, fams)
		}
	}
}

func TestRegistryIdempotentAndCounterSet(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "x")
	b := r.NewCounter("x_total", "x")
	if a != b {
		t.Fatal("re-registration returned a distinct counter")
	}
	a.Set(10)
	a.Set(4) // regressions ignored: a racing scrape must never see it go back
	if got := b.Value(); got != 10 {
		t.Fatalf("counter after Set(10), Set(4) = %v, want 10", got)
	}
	a.Add(-5) // negative deltas ignored
	if got := b.Value(); got != 10 {
		t.Fatalf("counter after Add(-5) = %v, want 10", got)
	}
}

func TestValidateExpositionRejectsGarbage(t *testing.T) {
	for name, in := range map[string]string{
		"undeclared family": "some_metric 3\n",
		"bad value":         "# TYPE m counter\nm notanumber\n",
		"unknown type":      "# TYPE m wibble\nm 1\n",
		"missing histo sum": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
	} {
		if _, err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ValidateExposition accepted %q", name, in)
		}
	}
}

func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.NewCounter("c_total", "c").Inc()
			r.NewGauge("g", "g", Label{"i", string(rune('a' + i%8))}).Set(float64(i))
			r.NewHistogram("h", "h", []float64{1, 10}).Observe(float64(i % 20))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			if _, err := ValidateExposition(strings.NewReader(b.String())); err != nil {
				t.Errorf("mid-flight exposition invalid: %v", err)
				return
			}
		}
	}()
	go func() { wg.Wait() }()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestAdmissionZeroConfigAdmitsEverything(t *testing.T) {
	a := NewAdmission(AdmissionConfig{})
	if a.Enabled() {
		t.Fatal("zero config reports Enabled")
	}
	hot := Signals{QueueDepth: 1 << 20, LaneBacklog: 1 << 20, DecryptMicros: 1e9}
	for i := 0; i < 1000; i++ {
		ok, shed, _ := a.Allow("anyone", hot)
		if !ok || shed {
			t.Fatalf("zero-config gate refused (ok=%v shed=%v)", ok, shed)
		}
	}
	var nilGate *Admission
	if ok, _, _ := nilGate.Allow("x", hot); !ok {
		t.Fatal("nil gate refused")
	}
}

func TestAdmissionTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	a := NewAdmission(AdmissionConfig{
		RatePerSec: 10, Burst: 3,
		now: func() time.Time { return now },
	})
	for i := 0; i < 3; i++ {
		ok, shed, _ := a.Allow("s1", Signals{})
		if !ok || shed {
			t.Fatalf("send %d within burst refused", i)
		}
	}
	ok, shed, ra := a.Allow("s1", Signals{})
	if ok || shed {
		t.Fatalf("over-burst send: ok=%v shed=%v, want refused non-shed", ok, shed)
	}
	if ra <= 0 || ra > 150*time.Millisecond {
		t.Fatalf("retryAfter %v, want ~100ms (1 token at 10/s)", ra)
	}
	// Another sender is unaffected.
	if ok, _, _ := a.Allow("s2", Signals{}); !ok {
		t.Fatal("independent sender refused")
	}
	// Refill: 200ms at 10/s = 2 tokens.
	now = now.Add(200 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if ok, _, _ := a.Allow("s1", Signals{}); !ok {
			t.Fatalf("post-refill send %d refused", i)
		}
	}
	if ok, _, _ := a.Allow("s1", Signals{}); ok {
		t.Fatal("third post-refill send admitted, bucket should hold 2")
	}
}

func TestAdmissionShedGate(t *testing.T) {
	a := NewAdmission(AdmissionConfig{ShedQueueDepth: 100, ShedDecryptMicros: 5000})
	if !a.Enabled() {
		t.Fatal("shed-only config reports disabled")
	}
	if ok, _, _ := a.Allow("s", Signals{QueueDepth: 99}); !ok {
		t.Fatal("below-threshold refused")
	}
	ok, shed, ra := a.Allow("s", Signals{QueueDepth: 100})
	if ok || !shed || ra <= 0 {
		t.Fatalf("at-threshold: ok=%v shed=%v ra=%v, want shed refusal with hint", ok, shed, ra)
	}
	if ok, shed, _ := a.Allow("s", Signals{DecryptMicros: 6000}); ok || !shed {
		t.Fatal("decrypt-latency signal did not shed")
	}
	// LaneBacklog threshold unset: that signal alone never sheds.
	if ok, _, _ := a.Allow("s", Signals{LaneBacklog: 1 << 20}); !ok {
		t.Fatal("disabled signal caused shedding")
	}
}

func TestAdmissionSenderBound(t *testing.T) {
	a := NewAdmission(AdmissionConfig{RatePerSec: 1, Burst: 1, MaxSenders: 8})
	for i := 0; i < 64; i++ {
		a.Allow(string(rune('A'+i)), Signals{})
	}
	if got := a.Senders(); got > 8 {
		t.Fatalf("sender map grew to %d, bound is 8", got)
	}
}

func TestScoreMonotoneAndShedClamp(t *testing.T) {
	idle := Score(Signals{}, false)
	if idle != 1 {
		t.Fatalf("idle score %v, want 1", idle)
	}
	busy := Score(Signals{QueueDepth: 512}, false)
	busier := Score(Signals{QueueDepth: 512, LaneBacklog: 16}, false)
	if !(idle > busy && busy > busier) {
		t.Fatalf("score not monotone: idle=%v busy=%v busier=%v", idle, busy, busier)
	}
	shed := Score(Signals{}, true)
	healthyButLoaded := Score(Signals{QueueDepth: 4096, LaneBacklog: 128, DecryptMicros: 20000}, false)
	if shed >= healthyButLoaded {
		t.Fatalf("shedding peer (%v) must rank below any non-shedding one (%v)", shed, healthyButLoaded)
	}
	if shed <= 0 || math.IsNaN(shed) {
		t.Fatalf("score out of range: %v", shed)
	}
}
