// Package health is the MixNN control plane: an operator metrics
// registry in Prometheus text exposition format (no external deps), a
// per-sender admission controller (token-bucket rate limiting plus a
// load-shedding gate over live tier signals), and the health score that
// discovery advertises so participant SDKs can rank failover targets.
//
// The three pieces are deliberately coupled: the same Signals snapshot
// that drives load shedding also feeds the health score served on
// /v1/discover, and both admission outcomes and the raw signals are
// registered as instruments on the metrics registry served on
// /v1/metrics. One observation path, three consumers.
package health

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Label is one key=value pair identifying a sample within a metric
// family (e.g. the destination endpoint of an outbox lane gauge).
type Label struct {
	Key, Value string
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use; the
// constructors are idempotent — asking for an existing (name, labels)
// pair returns the already-registered instrument, so scrape-time
// mirroring code can re-resolve instruments without bookkeeping.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one metric name: its metadata plus every labeled sample.
type family struct {
	name, help, kind string // kind: "counter", "gauge", "histogram"
	samples          map[string]instrument
	order            []string // insertion order of label keys, for stable output
}

type instrument interface {
	// write renders the sample lines for this instrument. name is the
	// family name, labels the rendered {k="v",...} block ("" if none).
	write(w io.Writer, name, labels string) error
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// resolve returns the instrument registered under (name, labels),
// creating it via mk on first use. It panics on a name registered under
// a different type or help string — that is a programming error, not an
// operational condition.
func (r *Registry) resolve(name, help, kind string, labels []Label, mk func() instrument) instrument {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, samples: make(map[string]instrument)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("health: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	inst, ok := f.samples[key]
	if !ok {
		inst = mk()
		f.samples[key] = inst
		f.order = append(f.order, key)
	}
	return inst
}

// Counter is a monotonically increasing value. Besides Add/Inc for
// inline instrumentation, Set supports scrape-time mirroring of a
// monotonic total maintained elsewhere (e.g. a proxy status counter):
// the exposition stays a proper counter family while the source of
// truth stays where it was.
type Counter struct {
	bits uint64 // float64 bits, CAS-updated
}

// NewCounter returns the counter registered under name and labels,
// creating it on first use.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	return r.resolve(name, help, "counter", labels, func() instrument { return &Counter{} }).(*Counter)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (v < 0 is ignored — counters are monotonic).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := atomic.LoadUint64(&c.bits)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&c.bits, old, next) {
			return
		}
	}
}

// Set overwrites the counter with an externally-maintained monotonic
// total. Values below the current one are ignored so a racing scrape
// can never observe the counter go backwards.
func (c *Counter) Set(total float64) {
	for {
		old := atomic.LoadUint64(&c.bits)
		if total <= math.Float64frombits(old) {
			return
		}
		if atomic.CompareAndSwapUint64(&c.bits, old, math.Float64bits(total)) {
			return
		}
	}
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(atomic.LoadUint64(&c.bits)) }

func (c *Counter) write(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, fmtFloat(c.Value()))
	return err
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits uint64
}

// NewGauge returns the gauge registered under name and labels, creating
// it on first use.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	return r.resolve(name, help, "gauge", labels, func() instrument { return &Gauge{} }).(*Gauge)
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { atomic.StoreUint64(&g.bits, math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(atomic.LoadUint64(&g.bits)) }

func (g *Gauge) write(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, fmtFloat(g.Value()))
	return err
}

// Histogram counts observations into fixed cumulative buckets. Bounds
// are set at registration and immutable; Observe is lock-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	counts  []uint64  // len(bounds)+1, last is the +Inf bucket
	sumBits uint64
}

// NewHistogram returns the histogram registered under name and labels,
// creating it with the given ascending bucket upper bounds on first
// use. An empty bounds slice yields a single +Inf bucket.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return r.resolve(name, help, "histogram", labels, func() instrument {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
	}).(*Histogram)
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	atomic.AddUint64(&h.counts[i], 1)
	for {
		old := atomic.LoadUint64(&h.sumBits)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&h.sumBits, old, next) {
			return
		}
	}
}

func (h *Histogram) write(w io.Writer, name, labels string) error {
	var cum uint64
	for i, bound := range h.bounds {
		cum += atomic.LoadUint64(&h.counts[i])
		if err := writeBucket(w, name, labels, fmtFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += atomic.LoadUint64(&h.counts[len(h.bounds)])
	if err := writeBucket(w, name, labels, "+Inf", cum); err != nil {
		return err
	}
	sum := math.Float64frombits(atomic.LoadUint64(&h.sumBits))
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, fmtFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
	return err
}

func writeBucket(w io.Writer, name, labels, le string, cum uint64) error {
	// A histogram bucket merges the le label into any instrument labels.
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		return err
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels[1:len(labels)-1], le, cum)
	return err
}

// WritePrometheus renders every family in text exposition format,
// sorted by family name, samples in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type sample struct {
		key  string
		inst instrument
	}
	type snap struct {
		name, help, kind string
		samples          []sample
	}
	// Snapshot families and instrument pointers under the lock (the map
	// itself may grow concurrently); instruments are internally atomic,
	// so rendering them after unlock needs no further synchronization.
	snaps := make([]snap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		s := snap{name: f.name, help: f.help, kind: f.kind}
		for _, key := range f.order {
			s.samples = append(s.samples, sample{key, f.samples[key]})
		}
		snaps = append(snaps, s)
	}
	r.mu.Unlock()

	for _, s := range snaps {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", s.name, s.help, s.name, s.kind); err != nil {
			return err
		}
		for _, sm := range s.samples {
			if err := sm.inst.write(w, s.name, sm.key); err != nil {
				return err
			}
		}
	}
	return nil
}

// labelKey renders labels as a stable `{k="v",...}` block ("" if none).
// Keys are sorted so the same label set always maps to the same sample.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString("=\"")
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// fmtFloat renders a sample value: integers without a fraction, else
// shortest round-trip form.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidateExposition parses Prometheus text exposition from r and
// returns the metric family names it declares, in order of appearance.
// It fails on structural errors: samples for an undeclared family, a
// TYPE line with an unknown kind, malformed sample lines, or histogram
// families missing their _count/_sum series. It is what the loadgen
// harness and CI smoke use to assert /v1/metrics stays scrapeable.
func ValidateExposition(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	kinds := make(map[string]string)
	seenSample := make(map[string]bool)
	var names []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, kind := fields[2], fields[3]
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, kind)
			}
			if _, dup := kinds[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for family %q", lineNo, name)
			}
			kinds[name] = kind
			names = append(names, name)
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		// Sample line: name{labels} value  or  name value.
		cut := strings.IndexAny(line, "{ ")
		if cut <= 0 {
			return nil, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		sample := line[:cut]
		rest := line[cut:]
		if rest[0] == '{' {
			close := strings.LastIndexByte(rest, '}')
			if close < 0 {
				return nil, fmt.Errorf("line %d: unterminated label block %q", lineNo, line)
			}
			rest = rest[close+1:]
		}
		valStr := strings.TrimSpace(rest)
		// A timestamp may follow the value; the value is the first field.
		if i := strings.IndexByte(valStr, ' '); i >= 0 {
			valStr = valStr[:i]
		}
		if _, err := strconv.ParseFloat(valStr, 64); err != nil {
			return nil, fmt.Errorf("line %d: bad sample value %q: %v", lineNo, valStr, err)
		}
		fam := sample
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(sample, suffix)
			if base != sample && kinds[base] == "histogram" {
				fam = base
				break
			}
		}
		if _, ok := kinds[fam]; !ok {
			return nil, fmt.Errorf("line %d: sample %q for undeclared family", lineNo, sample)
		}
		seenSample[fam+strings.TrimPrefix(sample, fam)] = true
		seenSample[fam] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, kind := range kinds {
		if kind != "histogram" {
			continue
		}
		if !seenSample[name+"_count"] || !seenSample[name+"_sum"] {
			return nil, fmt.Errorf("histogram family %q missing _count/_sum series", name)
		}
	}
	return names, nil
}
